package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int64
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 200, 4
	var inflight, peak atomic.Int64
	Run(n, workers, func(int) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inflight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent invocations, cap is %d", p, workers)
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	Run(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	Run(1, 4, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran fn %d times", ran)
	}
}

func TestRunReRaisesWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic was swallowed", workers)
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *WorkerPanic", workers, r)
				}
				if wp.Value != "boom-7" {
					t.Fatalf("workers=%d: panic value = %v, want boom-7", workers, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Fatalf("workers=%d: worker stack not captured", workers)
				}
			}()
			Run(50, workers, func(i int) {
				if i == 7 {
					panic("boom-7")
				}
			})
		}()
		waitForGoroutines(t, before)
	}
}

func TestRunPanicStopsDispatch(t *testing.T) {
	var after atomic.Int64
	func() {
		defer func() { _ = recover() }()
		Run(10_000, 2, func(i int) {
			if i == 0 {
				panic("early")
			}
			after.Add(1)
		})
	}()
	// The pool must stop handing out work shortly after the panic; a few
	// in-flight indices are fine, finishing all 10k is not.
	if got := after.Load(); got > 1_000 {
		t.Fatalf("%d indices ran after the panic; dispatch was not poisoned", got)
	}
}

func TestRunCtxCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := RunCtx(ctx, 10_000, workers, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > 1_000 {
			t.Fatalf("workers=%d: %d invocations after cancel", workers, got)
		}
	}
}

func TestRunCtxCompletedRunReturnsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	if err := RunCtx(ctx, 64, 4, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64", ran.Load())
	}
}

func TestRunCtxDrainsInFlightWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	err := RunCtx(ctx, 100, 4, func(i int) {
		started.Add(1)
		cancel()
		time.Sleep(time.Millisecond)
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("started %d but finished %d: cancellation abandoned in-flight work",
			started.Load(), finished.Load())
	}
}

// waitForGoroutines polls until the goroutine count returns to (near) the
// baseline, failing the test if pool goroutines are still alive after a
// grace period.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
}
