// Package nas implements the paper's §VIII future-work direction:
// integrating Spotlight with neural architecture search "to fully
// explore the joint space of hardware, software, and neural models."
// A third daBO instance searches a parameterized MobileNet-style model
// family; each candidate architecture is lowered to CONV layers and
// co-designed by the full nested Spotlight flow, and the architecture
// search minimizes the hardware objective subject to a model-quality
// floor.
//
// Model quality is scored by a synthetic capacity-based proxy
// (QualityProxy) — this repository has no training pipeline, and NAS
// works (e.g. MnasNet itself) substitute predictors for training in
// exactly this position. The proxy is monotone in compute capacity with
// diminishing returns, which preserves the search dynamics that matter:
// a quality floor prunes small architectures, and EDP pressure prunes
// large ones, so the optimum sits at the crossover.
package nas

import (
	"fmt"
	"math"
	"math/rand"

	"spotlight/internal/workload"
)

// Arch is one point in the model design space: a MobileNet-style
// backbone parameterized the way platform-aware NAS papers do it.
type Arch struct {
	WidthMult  float64 // channel multiplier: 0.25–2.0
	Depth      int     // inverted-residual blocks per stage: 1–3
	KernelSize int     // depth-wise kernel: 3 or 5
	Resolution int     // input side: 96–224, multiple of 32
}

// Validate reports structurally invalid architectures.
func (a Arch) Validate() error {
	if a.WidthMult < 0.25 || a.WidthMult > 2.0 {
		return fmt.Errorf("nas: width multiplier %v out of [0.25, 2]", a.WidthMult)
	}
	if a.Depth < 1 || a.Depth > 3 {
		return fmt.Errorf("nas: depth %d out of [1, 3]", a.Depth)
	}
	if a.KernelSize != 3 && a.KernelSize != 5 {
		return fmt.Errorf("nas: kernel size %d not in {3, 5}", a.KernelSize)
	}
	if a.Resolution < 96 || a.Resolution > 224 || a.Resolution%32 != 0 {
		return fmt.Errorf("nas: resolution %d not a multiple of 32 in [96, 224]", a.Resolution)
	}
	return nil
}

// String renders the architecture compactly.
func (a Arch) String() string {
	return fmt.Sprintf("w%.2f d%d k%d r%d", a.WidthMult, a.Depth, a.KernelSize, a.Resolution)
}

// widthMults is the searched channel-multiplier grid.
var widthMults = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}

// RandomArch samples a uniformly random architecture.
func RandomArch(rng *rand.Rand) Arch {
	return Arch{
		WidthMult:  widthMults[rng.Intn(len(widthMults))],
		Depth:      1 + rng.Intn(3),
		KernelSize: 3 + 2*rng.Intn(2),
		Resolution: 96 + 32*rng.Intn(5),
	}
}

// stage describes one backbone stage at width multiplier 1.
type stage struct {
	channels int
	stride   int
}

var backbone = []stage{
	{24, 2}, {40, 2}, {80, 2}, {112, 1}, {160, 2},
}

// Model lowers the architecture to CONV-space layers: a strided stem
// convolution, Depth inverted-residual blocks per stage (1×1 expand,
// depth-wise KernelSize, 1×1 project), and a classifier head.
func (a Arch) Model() (workload.Model, error) {
	if err := a.Validate(); err != nil {
		return workload.Model{}, err
	}
	ch := func(c int) int {
		v := int(math.Round(a.WidthMult * float64(c)))
		if v < 4 {
			v = 4
		}
		return v
	}
	name := "nas-" + a.String()
	side := a.Resolution
	in := ch(16)
	layers := []workload.Layer{
		workload.Conv("stem", 1, in, 3, 3, 3, side+2-1, side+2-1).Strided(2),
	}
	side /= 2
	pad := a.KernelSize / 2
	for si, st := range backbone {
		out := ch(st.channels)
		exp := in * 4
		outSide := side / st.stride
		prefix := fmt.Sprintf("s%d", si+1)
		layers = append(layers,
			workload.Conv(prefix+"_exp", 1, exp, in, 1, 1, side, side),
			workload.FromDepthwise(prefix+"_dw", exp, a.KernelSize, a.KernelSize,
				side+2*pad-(st.stride-1), side+2*pad-(st.stride-1), st.stride),
			workload.Conv(prefix+"_proj", 1, out, exp, 1, 1, outSide, outSide),
		)
		if a.Depth > 1 {
			exp2 := out * 4
			layers = append(layers,
				workload.Conv(prefix+"b_exp", 1, exp2, out, 1, 1, outSide, outSide).Times(a.Depth-1),
				workload.FromDepthwise(prefix+"b_dw", exp2, a.KernelSize, a.KernelSize,
					outSide+2*pad, outSide+2*pad, 1).Times(a.Depth-1),
				workload.Conv(prefix+"b_proj", 1, out, exp2, 1, 1, outSide, outSide).Times(a.Depth-1),
			)
		}
		in = out
		side = outSide
	}
	layers = append(layers,
		workload.Conv("head", 1, ch(640), in, 1, 1, side, side),
		workload.FromFC("fc", ch(640), 1000),
	)
	m := workload.Model{Name: name, Layers: layers}
	if err := m.Validate(); err != nil {
		return workload.Model{}, fmt.Errorf("nas: lowering %s: %w", a, err)
	}
	return m, nil
}

// QualityProxy scores an architecture in [0, 1). It is a *synthetic*
// stand-in for a trained accuracy predictor: monotone in log-MACs and in
// resolution with saturating returns, so bigger models are better but
// with diminishing payoff — the regime real accuracy curves live in.
func QualityProxy(a Arch) (float64, error) {
	m, err := a.Model()
	if err != nil {
		return 0, err
	}
	gmacs := float64(m.TotalMACs()) / 1e9
	capacity := 1 - math.Exp(-3*math.Pow(gmacs, 0.4))
	res := float64(a.Resolution) / 224
	return 0.6*capacity + 0.25*capacity*res + 0.1*res, nil
}
