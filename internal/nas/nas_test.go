package nas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
)

func TestArchValidate(t *testing.T) {
	good := Arch{WidthMult: 1, Depth: 2, KernelSize: 3, Resolution: 160}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid arch rejected: %v", err)
	}
	cases := []Arch{
		{WidthMult: 0.1, Depth: 2, KernelSize: 3, Resolution: 160},
		{WidthMult: 1, Depth: 0, KernelSize: 3, Resolution: 160},
		{WidthMult: 1, Depth: 2, KernelSize: 4, Resolution: 160},
		{WidthMult: 1, Depth: 2, KernelSize: 3, Resolution: 100},
		{WidthMult: 1, Depth: 2, KernelSize: 3, Resolution: 512},
	}
	for _, c := range cases {
		if c.Validate() == nil {
			t.Fatalf("invalid arch accepted: %+v", c)
		}
	}
}

func TestRandomArchAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return RandomArch(rng).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArchModelLowersAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		a := RandomArch(rng)
		m, err := a.Model()
		if err != nil {
			t.Fatalf("arch %s failed to lower: %v", a, err)
		}
		if m.TotalMACs() <= 0 {
			t.Fatalf("arch %s has no compute", a)
		}
	}
}

func TestModelMACsScaleWithArch(t *testing.T) {
	base := Arch{WidthMult: 1, Depth: 1, KernelSize: 3, Resolution: 160}
	wider := base
	wider.WidthMult = 2
	deeper := base
	deeper.Depth = 3
	hires := base
	hires.Resolution = 224

	macs := func(a Arch) int64 {
		m, err := a.Model()
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalMACs()
	}
	b := macs(base)
	if macs(wider) <= b || macs(deeper) <= b || macs(hires) <= b {
		t.Fatalf("MACs not monotone in arch knobs: base=%d wider=%d deeper=%d hires=%d",
			b, macs(wider), macs(deeper), macs(hires))
	}
}

func TestQualityProxyMonotoneAndBounded(t *testing.T) {
	small := Arch{WidthMult: 0.25, Depth: 1, KernelSize: 3, Resolution: 96}
	big := Arch{WidthMult: 2, Depth: 3, KernelSize: 5, Resolution: 224}
	qs, err1 := QualityProxy(small)
	qb, err2 := QualityProxy(big)
	if err1 != nil || err2 != nil {
		t.Fatalf("proxy failed: %v / %v", err1, err2)
	}
	if qs >= qb {
		t.Fatalf("proxy not monotone: small %v >= big %v", qs, qb)
	}
	if qs < 0 || qb >= 1 {
		t.Fatalf("proxy out of [0,1): %v, %v", qs, qb)
	}
}

func TestSearchFindsFeasibleArch(t *testing.T) {
	cfg := SearchConfig{
		CoDesign: core.RunConfig{
			Space:     hw.EdgeSpace(),
			Budget:    hw.EdgeBudget(),
			Objective: core.MinEDP,
			HWSamples: 4,
			SWSamples: 6,
			Eval:      maestro.New(),
		},
		QualityFloor: 0.5,
		ArchSamples:  6,
		Seed:         1,
	}
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Quality < cfg.QualityFloor {
		t.Fatalf("winner below quality floor: %v", res.Best.Quality)
	}
	if res.Best.Objective <= 0 {
		t.Fatalf("bad objective: %v", res.Best.Objective)
	}
	if len(res.Evaluated) == 0 {
		t.Fatal("nothing evaluated")
	}
	if err := res.Best.Arch.Validate(); err != nil {
		t.Fatalf("winning arch invalid: %v", err)
	}
	// The winner is the minimum over everything evaluated.
	for _, c := range res.Evaluated {
		if c.Objective < res.Best.Objective {
			t.Fatal("best is not the minimum of evaluated candidates")
		}
	}
}

func TestSearchImpossibleFloor(t *testing.T) {
	cfg := SearchConfig{
		CoDesign: core.RunConfig{
			Objective: core.MinEDP,
			HWSamples: 2,
			SWSamples: 4,
			Eval:      maestro.New(),
		},
		QualityFloor: 0.999, // unreachable: proxy < 1
		ArchSamples:  4,
		Seed:         2,
	}
	if _, err := Search(cfg); err == nil {
		t.Fatal("impossible floor produced a result")
	}
}

func TestArchFeaturesFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		a := RandomArch(rng)
		f, err := archFeatures(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 6 {
			t.Fatalf("feature vector length %d, want 6", len(f))
		}
	}
}

func TestArchString(t *testing.T) {
	a := Arch{WidthMult: 0.5, Depth: 2, KernelSize: 5, Resolution: 128}
	if a.String() != "w0.50 d2 k5 r128" {
		t.Fatalf("arch string = %q", a.String())
	}
}
