package nas

import (
	"fmt"
	"math"
	"math/rand"

	"spotlight/internal/core"
	"spotlight/internal/gp"
)

// SearchConfig configures the joint hardware/software/model search.
type SearchConfig struct {
	// CoDesign is the Spotlight configuration applied to each candidate
	// architecture (Models is overwritten per candidate).
	CoDesign core.RunConfig
	// QualityFloor rejects architectures whose quality proxy falls
	// below it (default 0.6).
	QualityFloor float64
	// ArchSamples is how many architectures the outer daBO evaluates
	// (default 12; each costs one full co-design run).
	ArchSamples int
	// CandidateBatch is the acquisition batch size (default 32).
	CandidateBatch int
	Seed           int64
}

// Candidate is one evaluated architecture with its co-designed hardware.
type Candidate struct {
	Arch      Arch
	Quality   float64
	Objective float64 // hardware objective of the co-designed accelerator
	Design    core.Design
}

// SearchResult is the outcome of a joint search.
type SearchResult struct {
	Best      Candidate
	Evaluated []Candidate // every architecture meeting the floor, in search order
	Rejected  int         // architectures below the quality floor
}

// archFeatures is the outer daBO's feature space over architectures:
// the raw parameters plus the domain quantities that predict cost and
// quality (log MACs and the proxy itself).
func archFeatures(a Arch) ([]float64, error) {
	m, err := a.Model()
	if err != nil {
		return nil, err
	}
	q, err := QualityProxy(a)
	if err != nil {
		return nil, err
	}
	return []float64{
		a.WidthMult,
		float64(a.Depth),
		float64(a.KernelSize),
		float64(a.Resolution),
		math.Log(float64(m.TotalMACs())),
		q,
	}, nil
}

// Search runs the joint exploration: an outer daBO proposes
// architectures; each is lowered to CONV layers, co-designed by the full
// nested Spotlight flow, and scored by the hardware objective; proposals
// below the quality floor (or with no feasible hardware) are recorded as
// invalid, teaching the outer surrogate the feasible frontier.
func Search(cfg SearchConfig) (SearchResult, error) {
	if cfg.QualityFloor <= 0 {
		cfg.QualityFloor = 0.6
	}
	if cfg.ArchSamples <= 0 {
		cfg.ArchSamples = 12
	}
	if cfg.CandidateBatch <= 0 {
		cfg.CandidateBatch = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dabo := core.NewDABO(gp.Linear{Bias: 1}, rng, core.WithWarmup(4))

	res := SearchResult{}
	res.Best.Objective = math.Inf(1)
	for t := 0; t < cfg.ArchSamples; t++ {
		arch, feats := suggestArch(dabo, rng, cfg.CandidateBatch)

		quality, err := QualityProxy(arch)
		if err != nil {
			dabo.ObserveInvalid(feats)
			continue
		}
		if quality < cfg.QualityFloor {
			res.Rejected++
			dabo.ObserveInvalid(feats)
			continue
		}
		model, err := arch.Model()
		if err != nil {
			dabo.ObserveInvalid(feats)
			continue
		}
		rc := cfg.CoDesign
		rc.Models = nil
		rc.Models = append(rc.Models, model)
		rc.Seed = cfg.Seed + int64(t)*104729
		run, err := core.Run(rc, core.NewSpotlight())
		if err != nil {
			dabo.ObserveInvalid(feats)
			continue
		}
		cand := Candidate{
			Arch:      arch,
			Quality:   quality,
			Objective: run.Best.Objective,
			Design:    run.Best,
		}
		res.Evaluated = append(res.Evaluated, cand)
		dabo.Observe(feats, run.Best.Objective)
		if cand.Objective < res.Best.Objective {
			res.Best = cand
		}
	}
	if math.IsInf(res.Best.Objective, 1) {
		return res, fmt.Errorf("%w: no architecture met quality floor %.2f in %d samples",
			core.ErrNoFeasible, cfg.QualityFloor, cfg.ArchSamples)
	}
	return res, nil
}

// suggestArch samples a candidate batch and lets the outer daBO pick.
func suggestArch(dabo *core.DABO, rng *rand.Rand, batch int) (Arch, []float64) {
	archs := make([]Arch, 0, batch)
	feats := make([][]float64, 0, batch)
	for len(archs) < batch {
		a := RandomArch(rng)
		f, err := archFeatures(a)
		if err != nil {
			continue
		}
		archs = append(archs, a)
		feats = append(feats, f)
	}
	idx := dabo.SuggestIndex(feats)
	return archs[idx], feats[idx]
}
