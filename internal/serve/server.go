// Package serve is spotlightd's HTTP layer: a thin JSON/SSE adapter over
// engine.Runner. It owns no orchestration — submission, queueing,
// cancellation, resume, and artifact retention all live in the engine —
// so everything here is request decoding, status-code mapping, and
// streaming.
//
// API (see DESIGN.md §14):
//
//	POST /jobs                       submit a JobSpec, returns its status
//	GET  /jobs                       list all jobs, submission order
//	GET  /jobs/{id}                  one job's status
//	POST /jobs/{id}/cancel           cancel (409 once terminal)
//	POST /jobs/{id}/resume           continue a terminal search job from
//	                                 its retained checkpoint
//	GET  /jobs/{id}/trace            SSE stream of the job's trace events
//	GET  /jobs/{id}/progress         live progress: incumbent, trials,
//	                                 eval throughput, cache-hit rate, ETA
//	GET  /jobs/{id}/artifacts/{name} one artifact's bytes (e.g. fig6.csv)
//	GET  /healthz                    liveness
//	GET  /metrics, /debug/pprof/*    the PR 5 introspection endpoints
//
// The SSE wire format is the internal/obs JSONL taxonomy verbatim: each
// `data:` line is one obs.Event marshaled exactly as the -trace file
// would hold it, so tracestat-style consumers parse either source. The
// stream ends with an `event: end` message whose data is the job's final
// state.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"spotlight/internal/engine"
	"spotlight/internal/obs"
)

// Server adapts an engine.Runner to HTTP.
type Server struct {
	runner *engine.Runner
	mux    *http.ServeMux
}

// New builds the server and its routes. reg, if non-nil, gets the
// /metrics and /debug/pprof/* endpoints mounted alongside the job API.
func New(runner *engine.Runner, reg *obs.Registry) *Server {
	s := &Server{runner: runner, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.status)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("POST /jobs/{id}/resume", s.resume)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.trace)
	s.mux.HandleFunc("GET /jobs/{id}/progress", s.progress)
	s.mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", s.artifact)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if reg != nil {
		// Roll every job's progress into labeled per-job gauges on each
		// /metrics scrape. The hook reads only per-job snapshots (no
		// runner or registry locks are held across it), so a scrape can
		// never stall a running search.
		reg.OnScrape(func() { rollupJobGauges(runner, reg) })
		obs.Mount(s.mux, reg)
	}
	return s
}

// rollupJobGauges publishes each job's progress as labeled gauges
// (job.trials.done{job="job-1"}, ...). Gauges are created on first
// scrape after the job appears and simply stop moving once it ends.
func rollupJobGauges(runner *engine.Runner, reg *obs.Registry) {
	for _, j := range runner.Jobs() {
		p := j.Progress()
		label := []string{"job", p.ID}
		reg.Gauge(obs.Labeled("job.trials.done", label...)).Set(float64(p.TrialsDone))
		if p.TrialsTotal > 0 {
			reg.Gauge(obs.Labeled("job.trials.total", label...)).Set(float64(p.TrialsTotal))
		}
		reg.Gauge(obs.Labeled("job.evals", label...)).Set(float64(p.Evals))
		reg.Gauge(obs.Labeled("job.evals.per.sec", label...)).Set(p.EvalsPerSec)
		reg.Gauge(obs.Labeled("job.cache.hit.rate", label...)).Set(p.CacheHitRate)
		reg.Gauge(obs.Labeled("job.elapsed.seconds", label...)).Set(p.ElapsedS)
		if p.BestObjective != nil {
			reg.Gauge(obs.Labeled("job.best.objective", label...)).Set(*p.BestObjective)
		}
	}
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errorBody is the JSON error envelope. Backends is set only for
// unknown-backend submissions, so the client learns what exists.
type errorBody struct {
	Error    string   `json:"error"`
	Backends []string `json:"backends,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the client hung up; there is no one
	// left to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	if unknown, ok := engine.IsUnknownBackend(err); ok {
		body.Backends = unknown.Registered
	}
	writeJSON(w, code, body)
}

// submit decodes a JobSpec strictly — unknown fields are a 400, catching
// typos like "step" for "steps" before they silently change a run — and
// enqueues it.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec engine.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	job, err := s.runner.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, engine.ErrShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, job.Status())
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.runner.Jobs()
	statuses := make([]engine.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.runner.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, engine.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	err := s.runner.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	case errors.Is(err, engine.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, engine.ErrJobFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) resume(w http.ResponseWriter, r *http.Request) {
	job, err := s.runner.Resume(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, job.Status())
	case errors.Is(err, engine.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, engine.ErrNotResumable):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, engine.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// trace streams the job's events as SSE. Events already buffered are
// replayed first, then the stream follows the job live until it reaches
// a terminal state, closing with `event: end` and the final state. The
// handler returns when the client disconnects or the job ends.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.runner.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, engine.ErrNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	buf := job.Trace()
	for i := 0; ; {
		events, done, more := buf.Since(i)
		for _, e := range events {
			line, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", line); err != nil {
				return // client went away
			}
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		i += len(events)
		if done && len(events) == 0 {
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", job.Status().State)
			flusher.Flush()
			return
		}
		if len(events) == 0 {
			select {
			case <-more:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// progress serves the job's live progress snapshot: incumbent so far,
// trials done/total, evaluation throughput, cache-hit rate, and ETA.
func (s *Server) progress(w http.ResponseWriter, r *http.Request) {
	job, ok := s.runner.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, engine.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Progress())
}

func (s *Server) artifact(w http.ResponseWriter, r *http.Request) {
	job, ok := s.runner.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, engine.ErrNotFound)
		return
	}
	name := r.PathValue("name")
	data, ok := job.Artifact(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: job %s has no artifact %q", job.ID(), name))
		return
	}
	switch {
	case strings.HasSuffix(name, ".json"):
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/csv")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
