package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"spotlight/internal/engine"
	"spotlight/internal/obs"
)

// newTestServer stands up a server over a fresh single-worker runner.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	r := engine.NewRunner(engine.RunnerConfig{Concurrency: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return New(r, obs.NewRegistry())
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v\n%s", err, rec.Body)
	}
	if body.Error == "" {
		t.Fatalf("error response has empty error field: %s", rec.Body)
	}
	return body
}

// simcheckBody is the cheapest valid experiment submission (~1s).
const simcheckBody = `{"kind":"experiment","steps":["simcheck"],"models":["Transformer"],"hw_samples":2,"sw_samples":4,"trials":1,"eval":"sim,cache"}`

// submitAndWait submits a job over HTTP and polls its status endpoint
// until it reaches a terminal state.
func submitAndWait(t *testing.T, s *Server, body string) engine.JobStatus {
	t.Helper()
	rec := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit = %d, want 201\n%s", rec.Code, rec.Body)
	}
	var st engine.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		rec = do(t, s, "GET", "/jobs/"+st.ID, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d\n%s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case engine.StateDone, engine.StateFailed, engine.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never went terminal (still %s)", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubmitMalformedJSON(t *testing.T) {
	s := newTestServer(t)
	for name, body := range map[string]string{
		"truncated":     `{"kind":"experiment"`,
		"not json":      `steps=fig6`,
		"wrong type":    `{"kind":"experiment","steps":"fig6"}`,
		"unknown field": `{"kind":"experiment","step":["fig6"]}`,
	} {
		rec := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: submit = %d, want 400\n%s", name, rec.Code, rec.Body)
			continue
		}
		decodeError(t, rec)
	}
}

// TestSubmitUnknownBackendListsRegistered: an unknown eval-spec token is
// a 400 whose body names the backends that do exist — the
// *eval.UnknownBackendError carried over the wire.
func TestSubmitUnknownBackendListsRegistered(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "POST", "/jobs",
		`{"kind":"experiment","steps":["simcheck"],"eval":"no-such-backend,cache"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("submit = %d, want 400\n%s", rec.Code, rec.Body)
	}
	body := decodeError(t, rec)
	if len(body.Backends) == 0 {
		t.Fatalf("unknown-backend error did not list registered backends: %s", rec.Body)
	}
	found := false
	for _, b := range body.Backends {
		if b == "maestro" {
			found = true
		}
	}
	if !found {
		t.Fatalf("backend list %v missing maestro", body.Backends)
	}
	if !strings.Contains(body.Error, "no-such-backend") {
		t.Fatalf("error %q does not name the offending token", body.Error)
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "POST", "/jobs", `{"kind":"experiment","steps":["fig99"]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("submit = %d, want 400\n%s", rec.Code, rec.Body)
	}
	decodeError(t, rec)
}

func TestCancelUnknownAndFinished(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "POST", "/jobs/job-999/cancel", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404\n%s", rec.Code, rec.Body)
	}
	st := submitAndWait(t, s, simcheckBody)
	if st.State != engine.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	rec := do(t, s, "POST", "/jobs/"+st.ID+"/cancel", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel finished = %d, want 409\n%s", rec.Code, rec.Body)
	}
	decodeError(t, rec)
}

func TestResumeRejections(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "POST", "/jobs/job-999/resume", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("resume unknown = %d, want 404\n%s", rec.Code, rec.Body)
	}
	// Experiment jobs have no checkpoint: resume is a conflict.
	st := submitAndWait(t, s, simcheckBody)
	rec := do(t, s, "POST", "/jobs/"+st.ID+"/resume", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("resume experiment = %d, want 409\n%s", rec.Code, rec.Body)
	}
	decodeError(t, rec)
}

func TestStatusAndArtifactNotFound(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "GET", "/jobs/job-999", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("status unknown = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "GET", "/jobs/job-999/artifacts/fig6.csv", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("artifact of unknown job = %d, want 404", rec.Code)
	}
	st := submitAndWait(t, s, simcheckBody)
	rec := do(t, s, "GET", "/jobs/"+st.ID+"/artifacts/nope.csv", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown artifact = %d, want 404\n%s", rec.Code, rec.Body)
	}
	decodeError(t, rec)

	rec = do(t, s, "GET", "/jobs/"+st.ID+"/artifacts/simcheck.csv", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("artifact = %d, want 200 (artifacts: %v)", rec.Code, st.Artifacts)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("artifact content type = %q, want text/csv", ct)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("artifact body is empty")
	}
}

func TestListAndHealthz(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	submitAndWait(t, s, simcheckBody)
	rec := do(t, s, "GET", "/jobs", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list = %d, want 200", rec.Code)
	}
	var out struct {
		Jobs []engine.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].ID != "job-1" {
		t.Fatalf("jobs = %+v, want exactly job-1", out.Jobs)
	}
}

// TestTraceStreamIsJSONLTaxonomy: the SSE stream replays the whole trace,
// every data line parses under the strict JSONL schema, and the stream
// closes with `event: end` carrying the job's final state. The handler
// is invoked synchronously — it returns once the job is terminal, so the
// recorder holds the complete stream.
func TestTraceStreamIsJSONLTaxonomy(t *testing.T) {
	s := newTestServer(t)
	if rec := do(t, s, "GET", "/jobs/job-999/trace", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("trace of unknown job = %d, want 404", rec.Code)
	}
	// fig6 rather than simcheck: the trace must actually carry search
	// events for the schema check to mean anything.
	submitAndWait(t, s, `{"kind":"experiment","steps":["fig6"],"models":["Transformer"],"hw_samples":2,"sw_samples":4,"trials":1,"eval":"sim,cache"}`)
	rec := do(t, s, "GET", "/jobs/job-1/trace", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("trace content type = %q, want text/event-stream", ct)
	}

	var (
		events  int
		lastSeq int64
		ended   bool
		final   string
	)
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			ended = true
		case strings.HasPrefix(line, "data: ") && ended:
			final = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, "data: "):
			ev, err := obs.ParseLine([]byte(strings.TrimPrefix(line, "data: ")))
			if err != nil {
				t.Fatalf("SSE data line is not a valid JSONL trace event: %v\n%s", err, line)
			}
			if ev.Seq != lastSeq+1 {
				t.Fatalf("event seq %d follows %d; replay must be gapless and ordered", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			events++
		case line != "":
			t.Fatalf("unexpected SSE line: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("stream carried no trace events")
	}
	if !ended || final != string(engine.StateDone) {
		t.Fatalf("stream end: ended=%v final=%q, want event: end with %q", ended, final, engine.StateDone)
	}
}

// TestShutdownDrainsAndRefusesSubmissions: after the runner starts
// draining, submissions are 503 but finished jobs stay queryable.
func TestShutdownDrainsAndRefusesSubmissions(t *testing.T) {
	r := engine.NewRunner(engine.RunnerConfig{Concurrency: 1})
	s := New(r, nil)
	st := submitAndWait(t, s, simcheckBody)
	if st.State != engine.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec := do(t, s, "POST", "/jobs", simcheckBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503\n%s", rec.Code, rec.Body)
	}
	decodeError(t, rec)
	if rec := do(t, s, "GET", "/jobs/"+st.ID, ""); rec.Code != http.StatusOK {
		t.Fatalf("status after shutdown = %d, want 200", rec.Code)
	}
}

// TestShutdownLeavesNoGoroutines runs the full serve lifecycle — a
// runner with workers, the HTTP surface, a completed job, and an obs
// introspection server — then asserts the goroutine count returns to
// its pre-test baseline after shutdown. It is the runtime half of the
// goroutinejoin analyzer's guarantee: the analyzer proves every spawn
// has a join, this test proves the joins actually fire. On failure it
// dumps every goroutine stack, so the leak names itself.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	r := engine.NewRunner(engine.RunnerConfig{Concurrency: 2})
	s := New(r, obs.NewRegistry())
	ms, err := obs.Serve("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st := submitAndWait(t, s, simcheckBody)
	if st.State != engine.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	// Exercise every scrape path before shutdown: the runtime collector
	// and the per-job rollup are pure OnScrape hooks, and the progress
	// endpoint reads only snapshots — none of them may start anything
	// that would survive the joins below.
	for _, path := range []string{
		"/metrics", "/metrics?format=prometheus", "/jobs/" + st.ID + "/progress",
	} {
		if rec := do(t, s, "GET", path, ""); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d\n%s", path, rec.Code, rec.Body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := ms.Close(); err != nil {
		t.Fatalf("obs server close: %v", err)
	}

	// The last joins can trail Close by a scheduler beat; poll briefly
	// before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after shutdown: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
