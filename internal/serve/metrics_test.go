package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"spotlight/internal/engine"
	"spotlight/internal/obs"
)

// newMetricsServer stands up a server wired the way spotlightd wires
// it: the server-wide MetricsTracer feeds the mounted registry AND
// puts the Trace middleware in the shared eval pipeline, so per-job
// registries see eval traffic via span routing.
func newMetricsServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	r := engine.NewRunner(engine.RunnerConfig{Concurrency: 1, Tracer: obs.NewMetricsTracer(reg)})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return New(r, reg), reg
}

// tinySearchBody is the cheapest search submission (~1.5s). Unlike
// simcheck — an analytical step that never touches the eval pipeline —
// a search job generates eval and cache traffic, which is what the
// progress and rollup assertions below are about.
const tinySearchBody = `{"kind":"search","models":["Transformer"],"hw_samples":2,"sw_samples":4,"eval":"sim,cache"}`

// TestProgressEndpoint: unknown jobs are 404; a finished job serves a
// JSON progress snapshot whose throughput figures come from the job's
// own registry.
func TestProgressEndpoint(t *testing.T) {
	s, _ := newMetricsServer(t)
	if rec := do(t, s, "GET", "/jobs/nope/progress", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("progress for unknown job = %d, want 404\n%s", rec.Code, rec.Body)
	} else {
		decodeError(t, rec)
	}

	st := submitAndWait(t, s, tinySearchBody)
	if st.State != engine.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	rec := do(t, s, "GET", "/jobs/"+st.ID+"/progress", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("progress = %d\n%s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("progress Content-Type = %q, want application/json", ct)
	}
	var p engine.JobProgress
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("progress body is not a JobProgress: %v\n%s", err, rec.Body)
	}
	if p.ID != st.ID || p.State != engine.StateDone {
		t.Errorf("progress identity = %s/%s, want %s/done", p.ID, p.State, st.ID)
	}
	if p.TrialsDone != 2 || p.TrialsTotal != 2 {
		t.Errorf("trials = %d/%d, want 2/2", p.TrialsDone, p.TrialsTotal)
	}
	if p.Evals <= 0 {
		t.Errorf("evals = %d, want > 0", p.Evals)
	}
	if p.CacheHits+p.CacheMisses <= 0 {
		t.Error("no cache traffic in progress snapshot")
	}
	if p.ElapsedS <= 0 || p.Events <= 0 {
		t.Errorf("elapsed/events = %v/%d, want both > 0", p.ElapsedS, p.Events)
	}
	if p.ETAS != 0 {
		t.Errorf("ETA = %v on a terminal job, want 0", p.ETAS)
	}
}

// TestMetricsFormatNegotiation pins the /metrics contract: JSON by
// default, Prometheus 0.0.4 text on request (query param or Accept),
// HEAD answering with a GET's headers and no body, and 405 for writes.
// The Prometheus body must survive the strict validator and carry the
// per-job rollup gauges plus the runtime collector's output.
func TestMetricsFormatNegotiation(t *testing.T) {
	s, _ := newMetricsServer(t)
	st := submitAndWait(t, s, tinySearchBody)
	if st.State != engine.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}

	rec := do(t, s, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var snap obs.RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("default /metrics body is not a snapshot: %v", err)
	}
	if snap.Counters["trace.eval.done"] <= 0 {
		t.Errorf("JSON snapshot missing eval traffic: %v", snap.Counters)
	}

	rec = do(t, s, "GET", "/metrics?format=prometheus", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("prometheus Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body := rec.Body.Bytes()
	if err := obs.ValidatePrometheus(body); err != nil {
		t.Fatalf("exposition rejected by validator: %v\n%s", err, body)
	}
	for _, want := range []string{
		`job_trials_done{job="` + st.ID + `"}`,
		"go_goroutines ",
		"trace_eval_done ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if cl, err := strconv.Atoi(rec.Header().Get("Content-Length")); err != nil || cl != len(body) {
		t.Errorf("Content-Length = %q, want %d", rec.Header().Get("Content-Length"), len(body))
	}

	// An Accept header naming text/plain — what a real Prometheus
	// scraper sends — negotiates the same format without the query.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec2 := httptest.NewRecorder()
	req.Header.Set("Accept", "text/plain")
	s.Handler().ServeHTTP(rec2, req)
	if ct := rec2.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Accept text/plain Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.ValidatePrometheus(rec2.Body.Bytes()); err != nil {
		t.Fatalf("Accept-negotiated exposition invalid: %v", err)
	}

	// ?format=json wins over Accept: the query is the explicit ask.
	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec2 = httptest.NewRecorder()
	req.Header.Set("Accept", "text/plain")
	s.Handler().ServeHTTP(rec2, req)
	if ct := rec2.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("format=json Content-Type = %q, want application/json", ct)
	}

	// HEAD: same headers a GET would carry, empty body.
	req = httptest.NewRequest("HEAD", "/metrics?format=prometheus", nil)
	rec2 = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("HEAD /metrics = %d", rec2.Code)
	}
	if ct := rec2.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("HEAD Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if cl, err := strconv.Atoi(rec2.Header().Get("Content-Length")); err != nil || cl <= 0 {
		t.Errorf("HEAD Content-Length = %q, want a positive length", rec2.Header().Get("Content-Length"))
	}
	if rec2.Body.Len() != 0 {
		t.Errorf("HEAD carried a %d-byte body", rec2.Body.Len())
	}

	if rec := do(t, s, "POST", "/metrics", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	} else if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("405 Allow = %q, want \"GET, HEAD\"", allow)
	}
}
