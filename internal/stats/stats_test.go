package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRanksSimple(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if rho := Spearman(a, b); !near(rho, 1, 1e-12) {
		t.Fatalf("rho = %v, want 1", rho)
	}
}

func TestSpearmanInverse(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{9, 7, 5, 3}
	if rho := Spearman(a, b); !near(rho, -1, 1e-12) {
		t.Fatalf("rho = %v, want -1", rho)
	}
}

func TestSpearmanMonotoneTransformInvariance(t *testing.T) {
	// Spearman depends only on ranks, so exp() must not change it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		eb := make([]float64, n)
		for i := range b {
			eb[i] = math.Exp(b[i])
		}
		return near(Spearman(a, b), Spearman(a, eb), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanConstantInput(t *testing.T) {
	if rho := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); rho != 0 {
		t.Fatalf("rho = %v, want 0 for constant input", rho)
	}
}

func TestPearsonKnown(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 4, 6}
	if r := Pearson(a, b); !near(r, 1, 1e-12) {
		t.Fatalf("pearson = %v, want 1", r)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if q := Quantile(v, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(v, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(v, 0.5); !near(q, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", q)
	}
	if m := Median([]float64{5}); m != 5 {
		t.Fatalf("median single = %v", m)
	}
}

func TestMinMaxSummarize(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	s := Summarize(v)
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if p := c.At(0); p != 0 {
		t.Fatalf("At(0) = %v", p)
	}
	if p := c.At(2); p != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", p)
	}
	if p := c.At(10); p != 1 {
		t.Fatalf("At(10) = %v, want 1", p)
	}
	if x := c.InverseAt(0.5); x != 2 {
		t.Fatalf("InverseAt(0.5) = %v, want 2", x)
	}
	if x := c.InverseAt(1); x != 4 {
		t.Fatalf("InverseAt(1) = %v, want 4", x)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.25 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	if f := FractionBelow([]float64{1, 2, 3, 4}, 3); f != 0.5 {
		t.Fatalf("FractionBelow = %v, want 0.5", f)
	}
	if f := FractionBelow(nil, 3); f != 0 {
		t.Fatalf("FractionBelow(nil) = %v, want 0", f)
	}
}

func TestTopQuantileOverlapIdentical(t *testing.T) {
	v := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	if o := TopQuantileOverlap(v, v, 0.2); o != 1 {
		t.Fatalf("overlap of identical vectors = %v, want 1", o)
	}
}

func TestTopQuantileOverlapDisjoint(t *testing.T) {
	a := []float64{0, 1, 10, 10, 10, 10, 10, 10, 10, 10}
	b := []float64{10, 10, 10, 10, 10, 10, 10, 10, 0, 1}
	if o := TopQuantileOverlap(a, b, 0.2); o != 0 {
		t.Fatalf("overlap of disjoint tops = %v, want 0", o)
	}
}

func TestBottomQuantileOverlap(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if o := BottomQuantileOverlap(v, v, 0.2); o != 1 {
		t.Fatalf("bottom overlap = %v, want 1", o)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !near(g, 10, 1e-9) {
		t.Fatalf("geomean = %v, want 10", g)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !near(out[i], want[i], 1e-12) {
			t.Fatalf("normalize = %v", out)
		}
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("normalize zeros = %v", zero)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			x := Quantile(v, q)
			if x < prev-1e-12 || x < Min(v)-1e-12 || x > Max(v)+1e-12 {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
