// Package stats provides the statistics used throughout the evaluation:
// Spearman rank correlation (surrogate accuracy, §VII-D), quantiles and
// empirical CDFs (Figure 11), summary statistics for the convergence plots
// (Figure 10), and top-quantile overlap (§VII-D and §VII-F).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ranks returns the fractional ranks of v (average rank for ties), 1-based,
// as used by the Spearman rank correlation coefficient.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] { //lint:allow floateq(rank ties are defined by exact equality; a tolerance would invent ties and skew Spearman)
			j++
		}
		// Average rank over the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation coefficient ρ between a and
// b. It is the Pearson correlation of the rank vectors, which handles ties
// correctly. Returns 0 when either input has zero rank variance.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: spearman length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) < 2 {
		return 0
	}
	return Pearson(Ranks(a), Ranks(b))
}

// Pearson returns the Pearson correlation coefficient of a and b, or 0 when
// either vector is constant.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: pearson length mismatch %d vs %d", len(a), len(b)))
	}
	n := float64(len(a))
	if n < 2 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between order statistics. Panics on an empty slice.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		panic("stats: quantile of empty slice")
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of v.
func Median(v []float64) float64 { return Quantile(v, 0.5) }

// Min returns the smallest element of v. Panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of v. Panics on an empty slice.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: max of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the min / median / max statistics reported for each bar
// of Figures 6-8 (median of trials with min/max error bars).
type Summary struct {
	Min, Median, Max float64
}

// Summarize computes the Summary of v.
func Summarize(v []float64) Summary {
	return Summary{Min: Min(v), Median: Median(v), Max: Max(v)}
}

// CDF is an empirical cumulative distribution function over a sample set,
// as plotted in Figure 11.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample values.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x), the fraction of samples with value ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// InverseAt returns the smallest sample value x such that P(X ≤ x) ≥ p.
func (c *CDF) InverseAt(p float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: inverse CDF of empty sample set")
	}
	if p <= 0 {
		return c.sorted[0]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Len returns the number of samples in the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// FractionBelow returns the fraction of samples in a that are strictly
// smaller than threshold. Figure 11's commentary ("81.7% of the hardware
// samples that Spotlight selects are better than the best results that
// Spotlight-R finds") is computed this way.
func FractionBelow(a []float64, threshold float64) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for _, x := range a {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// TopQuantileOverlap returns the fraction of indices shared between the
// best q-quantile of a and the best q-quantile of b, where "best" means
// smallest value (costs are minimized). This implements the §VII-D metric
// ("roughly 24% of the top 20% of samples are correctly predicted") and the
// §VII-F MAESTRO/Timeloop agreement metric.
func TopQuantileOverlap(a, b []float64, q float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: overlap length mismatch %d vs %d", len(a), len(b)))
	}
	k := int(math.Round(q * float64(len(a))))
	if k <= 0 {
		return 0
	}
	topA := bestK(a, k)
	topB := bestK(b, k)
	shared := 0
	for i := range topA {
		if topA[i] && topB[i] {
			shared++
		}
	}
	return float64(shared) / float64(k)
}

// BottomQuantileOverlap is TopQuantileOverlap over the *largest* values.
func BottomQuantileOverlap(a, b []float64, q float64) float64 {
	na := negate(a)
	nb := negate(b)
	return TopQuantileOverlap(na, nb, q)
}

func negate(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

// bestK marks the indices of the k smallest values of v.
func bestK(v []float64, k int) []bool {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	mark := make([]bool, len(v))
	for _, i := range idx[:k] {
		mark[i] = true
	}
	return mark
}

// GeoMean returns the geometric mean of strictly positive values; used to
// aggregate speedups across models. Panics if any value is non-positive.
func GeoMean(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: geomean of empty slice")
	}
	var s float64
	for _, x := range v {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

// Normalize divides each element of v by the maximum of v, as done for the
// per-model feature importances in Figure 9. A zero or empty input is
// returned unchanged (as a copy).
func Normalize(v []float64) []float64 {
	out := append([]float64(nil), v...)
	if len(out) == 0 {
		return out
	}
	m := Max(out)
	if m == 0 {
		return out
	}
	for i := range out {
		out[i] /= m
	}
	return out
}
