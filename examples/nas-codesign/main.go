// NAS co-design: the §VIII future-work direction — jointly searching
// the neural model, the accelerator, and the software schedules. An
// outer daBO proposes MobileNet-style architectures; each one is
// co-designed by the full nested Spotlight flow; the search minimizes
// the accelerator's EDP subject to a model-quality floor (quality comes
// from a synthetic capacity proxy — see internal/nas for the caveat).
//
//	go run ./examples/nas-codesign
package main

import (
	"fmt"
	"log"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/nas"
)

func main() {
	cfg := nas.SearchConfig{
		CoDesign: core.RunConfig{
			Space:     hw.EdgeSpace(),
			Budget:    hw.EdgeBudget(),
			Objective: core.MinEDP,
			HWSamples: 8, // each architecture costs a full co-design run
			SWSamples: 12,
			Eval:      maestro.New(),
		},
		QualityFloor: 0.6,
		ArchSamples:  10,
		Seed:         1,
	}

	fmt.Println("joint model + hardware + schedule search...")
	res, err := nas.Search(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nevaluated %d architectures (%d below the quality floor):\n",
		len(res.Evaluated), res.Rejected)
	for _, c := range res.Evaluated {
		marker := " "
		if c.Arch == res.Best.Arch {
			marker = "*"
		}
		fmt.Printf("%s %-18s quality=%.3f  EDP=%.4g  accel=%s\n",
			marker, c.Arch, c.Quality, c.Objective, c.Design.Accel)
	}
	fmt.Printf("\nwinner: %s — quality %.3f at EDP %.4g\n",
		res.Best.Arch, res.Best.Quality, res.Best.Objective)
	fmt.Println("(bigger models raise quality but cost EDP; the search settles at the crossover)")
}
