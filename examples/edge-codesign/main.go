// Edge co-design: the paper's headline scenario (§VII-A). Co-design an
// edge-scale accelerator with ResNet-50 and compare the result against
// the three hand-designed baselines, each scheduled by the same
// layerwise software optimizer under its own dataflow constraint.
//
//	go run ./examples/edge-codesign
package main

import (
	"fmt"
	"log"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

func main() {
	model, err := workload.ByName("ResNet-50")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.RunConfig{
		Models:    []workload.Model{model},
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: core.MinDelay,
		HWSamples: 40, // the paper uses 100; 40 keeps this example quick
		SWSamples: 40,
		Seed:      7,
		Eval:      maestro.New(),
	}

	fmt.Println("co-designing an edge accelerator for ResNet-50...")
	res, err := core.Run(cfg, core.NewSpotlight())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Spotlight:     delay = %.4g cycles   (%s)\n",
		res.Best.Objective, res.Best.Accel)

	for _, b := range hw.EdgeBaselines() {
		bcfg := cfg
		bcfg.SWConstraint = b.Constraint
		design, err := core.OptimizeSoftware(bcfg, core.NewSpotlight(), b.Accel)
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}
		fmt.Printf("%-14s delay = %.4g cycles   (%.2fx Spotlight)\n",
			b.Name+":", design.Objective, design.Objective/res.Best.Objective)
	}

	fmt.Println("\nper-layer snapshot of the Spotlight design (first 5 layers):")
	for i, lr := range res.Best.Layers {
		if i == 5 {
			break
		}
		fmt.Printf("  %-12s delay=%.4g  util=%.0f%%  unroll=%v/%v\n",
			lr.Layer.Name, lr.Cost.DelayCycles, 100*lr.Cost.Utilization,
			lr.Schedule.OuterUnroll, lr.Schedule.InnerUnroll)
	}
}
