// Custom model: build your own workload out of CONV, GEMM, depth-wise
// and fully connected layers, co-design an accelerator for it, and
// cross-check the winning design on the second analytical model — the
// §VII-F methodology applied to a user workload.
//
//	go run ./examples/custom-model
package main

import (
	"fmt"
	"log"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/timeloop"
	"spotlight/internal/workload"
)

func main() {
	// A small keyword-spotting style network: conv frontend, depth-wise
	// block, attention-ish GEMM, classifier.
	model := workload.Model{
		Name: "kws-net",
		Layers: []workload.Layer{
			workload.Conv("stem", 1, 32, 1, 3, 3, 66, 42).Strided(2),
			workload.FromDepthwise("dw1", 32, 3, 3, 34, 22, 1),
			workload.Conv("pw1", 1, 64, 32, 1, 1, 32, 20),
			workload.FromGEMM("attn", 64, 64, 160).Times(2),
			workload.FromFC("classifier", 640, 12),
		},
	}
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %.1f MMACs across %d layers\n",
		model.Name, float64(model.TotalMACs())/1e6, len(model.Layers))

	cfg := core.RunConfig{
		Models:    []workload.Model{model},
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: core.MinEDP,
		HWSamples: 30,
		SWSamples: 30,
		Seed:      11,
		Eval:      maestro.New(),
	}
	res, err := core.Run(cfg, core.NewSpotlight())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best EDP:   %.4g nJ·cycles on %s\n", res.Best.Objective, res.Best.Accel)

	// Cross-check the winning design on the independent second model
	// (§VII-F: guard against overfitting the primary analytical model).
	second := timeloop.New()
	fmt.Println("\ncross-check against the second analytical model:")
	for _, lr := range res.Best.Layers {
		alt, err := second.Evaluate(res.Best.Accel, lr.Schedule, lr.Layer)
		if err != nil {
			fmt.Printf("  %-12s second model rejects the schedule (%v)\n", lr.Layer.Name, err)
			continue
		}
		ratio := alt.DelayCycles / lr.Cost.DelayCycles
		fmt.Printf("  %-12s primary=%.4g cycles  second=%.4g cycles  (%.2fx)\n",
			lr.Layer.Name, lr.Cost.DelayCycles, alt.DelayCycles, ratio)
	}
}
