// Multi-model co-design: the ASIC scenarios of §VII-B. One accelerator
// is co-designed with several DL models simultaneously, then each model's
// software schedule is re-optimized independently on the fixed silicon.
// The generalization scenario holds two models out of the design set and
// checks how well the accelerator serves them.
//
//	go run ./examples/multi-model
package main

import (
	"fmt"
	"log"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

func main() {
	design := mustModels("VGG16", "ResNet-50", "MobileNetV2")
	heldOut := mustModels("MnasNet", "Transformer")

	cfg := core.RunConfig{
		Models:    design,
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: core.MinEDP,
		HWSamples: 20, // multi-model runs evaluate every layer of every model
		SWSamples: 25,
		Seed:      3,
		Eval:      maestro.New(),
	}

	fmt.Println("co-designing one ASIC with VGG16 + ResNet-50 + MobileNetV2...")
	res, err := core.Run(cfg, core.NewSpotlight())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator: %s\n\n", res.Best.Accel)

	fmt.Println("design-time models (schedules re-optimized on the fixed silicon):")
	for _, m := range design {
		report(cfg, res.Best.Accel, m)
	}

	fmt.Println("\nheld-out models (the generalization test):")
	for _, m := range heldOut {
		report(cfg, res.Best.Accel, m)
	}
}

func report(cfg core.RunConfig, accel hw.Accel, m workload.Model) {
	runCfg := cfg
	runCfg.Models = []workload.Model{m}
	d, err := core.OptimizeSoftware(runCfg, core.NewSpotlight(), accel)
	if err != nil {
		log.Fatalf("%s: %v", m.Name, err)
	}
	fmt.Printf("  %-12s EDP = %.4g nJ·cycles\n", m.Name, d.Objective)
}

func mustModels(names ...string) []workload.Model {
	out := make([]workload.Model, 0, len(names))
	for _, n := range names {
		m, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}
