// Quickstart: co-design a small edge accelerator for a single
// convolutional layer and print the optimized hardware and schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

func main() {
	// A single mid-network convolution: 64→128 channels, 3×3 filters,
	// on a 30×30 (padded) input.
	layer := workload.Conv("demo_conv", 1, 128, 64, 3, 3, 30, 30)
	model := workload.Model{Name: "demo", Layers: []workload.Layer{layer}}

	cfg := core.RunConfig{
		Models:    []workload.Model{model},
		Space:     hw.EdgeSpace(),  // Figure 3 parameter ranges
		Budget:    hw.EdgeBudget(), // area/power envelope
		Objective: core.MinEDP,     // minimize energy-delay product
		HWSamples: 30,              // the paper uses 100
		SWSamples: 30,              // the paper uses 100 per layer
		Seed:      42,
		Eval:      maestro.New(),
	}

	res, err := core.Run(cfg, core.NewSpotlight())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Spotlight quickstart ==")
	fmt.Printf("layer:       %s (%.1f MMACs, software space ~%.1e points)\n",
		layer, float64(layer.MACs())/1e6, 2.6e13)
	fmt.Printf("best EDP:    %.4g nJ·cycles\n", res.Best.Objective)
	fmt.Printf("accelerator: %s\n", res.Best.Accel)
	fmt.Printf("area/power:  %.2f mm², %.1f mW peak\n",
		res.Best.Accel.AreaMM2(), res.Best.Accel.PeakPowerMW())

	lr := res.Best.Layers[0]
	fmt.Printf("schedule:    %s\n", lr.Schedule)
	fmt.Printf("cost:        %.4g cycles, %.4g nJ, %.0f%% PE utilization\n",
		lr.Cost.DelayCycles, lr.Cost.EnergyNJ, 100*lr.Cost.Utilization)

	fmt.Println("\nconvergence (best EDP so far):")
	for _, h := range res.History {
		if h.Sample%5 == 0 || h.Sample == 1 {
			fmt.Printf("  sample %2d: %.4g\n", h.Sample, h.BestSoFar)
		}
	}
}
