// Validate-model: cross-check the analytical cost model against the
// trace-driven scratchpad simulator — the methodology MAESTRO justified
// with RTL validation, applied to this reproduction's own substrate. The
// example also quantifies how much DRAM traffic a multi-tile LRU
// scratchpad would save over the analytical single-working-set
// assumption, the paper's "more accurate evaluation backend" direction.
//
//	go run ./examples/validate-model
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/sim"
	"spotlight/internal/workload"
)

func main() {
	layer := workload.Conv("probe", 1, 64, 32, 3, 3, 34, 34) // ~120 KB working set: larger than most L2 samples
	model := maestro.New()
	space := hw.EdgeSpace()
	free := sched.Free()
	rng := rand.New(rand.NewSource(1))

	fmt.Println("schedule-by-schedule validation (analytical vs simulated DRAM bytes):")
	matches, checked := 0, 0
	var totalSaving float64
	for checked < 10 {
		a := space.Random(rng)
		s := free.Random(rng, layer, a.RFBytesPerPE(), a.L2Bytes())
		cost, err := model.Evaluate(a, s, layer)
		if err != nil {
			continue
		}
		single, err := sim.Simulate(a, s, layer, sim.Options{SingleWorkingSet: true})
		if err != nil {
			continue
		}
		full, err := sim.Simulate(a, s, layer, sim.Options{})
		if err != nil {
			continue
		}
		checked++
		match := single.DRAMBytes() == cost.DRAMBytes //lint:allow floateq(demonstrates bit-exact analytical-vs-simulated agreement; exactness is the point)
		if match {
			matches++
		}
		saving := 1 - full.DRAMBytes()/single.DRAMBytes()
		totalSaving += saving
		fmt.Printf("  analytical=%8.0f B  simulated=%8.0f B  match=%-5v  LRU cache saves %4.1f%%\n",
			cost.DRAMBytes, single.DRAMBytes(), match, 100*saving)
	}
	fmt.Printf("\n%d/%d schedules match the analytical model exactly\n", matches, checked)
	fmt.Printf("multi-tile caching would remove %.1f%% of DRAM traffic on average\n",
		100*totalSaving/float64(checked))
	if matches != checked {
		log.Fatal("validation failed: the analytical model disagrees with the simulator")
	}
}
