package spotlight

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VII), plus ablation and microarchitecture-level
// benchmarks. Each figure benchmark runs its internal/exp driver at a
// reduced-but-structurally-identical scale, so
//
//	go test -bench=. -benchmem
//
// regenerates every result series; pass figure-scale budgets through
// cmd/experiments -paper when absolute convergence quality matters.

import (
	"errors"
	"math/rand"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/exp"
	"spotlight/internal/gp"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/nas"
	"spotlight/internal/oracle"
	"spotlight/internal/sched"
	"spotlight/internal/search"
	"spotlight/internal/sim"
	"spotlight/internal/timeloop"
	"spotlight/internal/workload"
)

// benchCfg is the reduced-scale configuration shared by the figure
// benchmarks: one model, few samples, single trial.
func benchCfg(models ...string) exp.Config {
	if len(models) == 0 {
		models = []string{"Transformer"}
	}
	return exp.Config{
		Scale:     "edge",
		Objective: core.MinDelay,
		HWSamples: 6,
		SWSamples: 8,
		Trials:    1,
		Seed:      1,
		Models:    models,
	}
}

// tolerate fails the benchmark on real errors but accepts ErrNoFeasible:
// with the reduced bench sample budgets, some seeds legitimately strand
// the restricted search strategies.
func tolerate(b *testing.B, err error) {
	b.Helper()
	if err != nil && !errors.Is(err, core.ErrNoFeasible) {
		b.Fatal(err)
	}
}

// BenchmarkFig6EdgeSingleModel regenerates Figure 6: edge-scale
// single-model co-design versus hand-designed accelerators and prior
// co-design tools.
func BenchmarkFig6EdgeSingleModel(b *testing.B) {
	cfg := benchCfg("ResNet-50")
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Fig6(cfg)
		tolerate(b, err)
	}
}

// BenchmarkFig7CloudSingleModel regenerates Figure 7: cloud-scale
// co-design (EDP and delay) versus scaled-up hand-designed baselines.
func BenchmarkFig7CloudSingleModel(b *testing.B) {
	cfg := benchCfg("Transformer")
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Fig7(cfg)
		tolerate(b, err)
	}
}

// BenchmarkFig8MultiModel regenerates Figure 8: single- vs multi-model
// vs generalization co-design. Uses two models so the multi-model and
// generalization paths both execute.
func BenchmarkFig8MultiModel(b *testing.B) {
	cfg := benchCfg("ResNet-50", "Transformer")
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Fig8(cfg)
		tolerate(b, err)
	}
}

// BenchmarkFig9FeatureImportance regenerates Figure 9: permutation
// importance of every daBO_SW feature.
func BenchmarkFig9FeatureImportance(b *testing.B) {
	cfg := benchCfg("Transformer")
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Fig9(cfg)
		tolerate(b, err)
	}
}

// BenchmarkFig10Convergence regenerates Figure 10: convergence of the
// seven search algorithms on one model.
func BenchmarkFig10Convergence(b *testing.B) {
	cfg := benchCfg("ResNet-50")
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Fig10(cfg)
		tolerate(b, err)
	}
}

// BenchmarkFig11SampleCDF regenerates Figure 11: the per-trial CDFs of
// hardware sample quality, derived from Figure 10 runs.
func BenchmarkFig11SampleCDF(b *testing.B) {
	cfg := benchCfg("Transformer")
	curves, err := exp.Fig10(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdfs := exp.Fig11(curves)
		if len(cdfs) == 0 {
			b.Fatal("no CDFs")
		}
	}
}

// BenchmarkSurrogateAccuracy regenerates the §VII-D surrogate study:
// Spearman ρ and top-quintile hit rate for linear and Matérn kernels.
func BenchmarkSurrogateAccuracy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := exp.SurrogateAccuracy(cfg, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscussionThroughput regenerates the §VII-C analysis:
// throughput-per-Joule and reuse versus the hand-designed baselines.
func BenchmarkDiscussionThroughput(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.Discussion(cfg, "Transformer")
		tolerate(b, err)
	}
}

// BenchmarkTimeloopAgreement regenerates the §VII-F cross-model
// validation: rank agreement between the two analytical models.
func BenchmarkTimeloopAgreement(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := exp.CrossModelAgreement(cfg, "Transformer", 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFeatureSets compares a full co-design run under the
// three feature modes of §VII-D — Spotlight (features), Spotlight-V (raw
// parameters), Spotlight-A (union) — the repository's headline design
// choice.
func BenchmarkAblationFeatureSets(b *testing.B) {
	model, err := workload.ByName("Transformer")
	if err != nil {
		b.Fatal(err)
	}
	rc := core.RunConfig{
		Models: []workload.Model{model}, Objective: core.MinDelay,
		HWSamples: 6, SWSamples: 8, Eval: maestro.New(),
	}
	for _, strat := range []*core.Spotlight{
		core.NewSpotlight(), core.NewSpotlightV(), core.NewSpotlightA(),
	} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.Seed = int64(i + 1)
				_, err := core.Run(rc, strat)
				tolerate(b, err)
			}
		})
	}
}

// BenchmarkAblationKernels compares surrogate fit+predict cost for the
// linear kernel against Matérn-5/2 — the §V-A complexity argument for
// the linear kernel.
func BenchmarkAblationKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 100, 11
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	probe := make([]float64, d)
	kernels := []gp.Kernel{gp.Linear{Bias: 1}, gp.Matern52{LengthScale: 1, Variance: 1}}
	for _, k := range kernels {
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := gp.New(k, 1e-4)
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 32; j++ {
					if _, _, err := m.Predict(probe); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationSearchStrategies times one nested co-design run per
// competing algorithm — the per-sample cost tradeoff behind Figure 10's
// wall-clock axis.
func BenchmarkAblationSearchStrategies(b *testing.B) {
	model, err := workload.ByName("Transformer")
	if err != nil {
		b.Fatal(err)
	}
	rc := core.RunConfig{
		Models: []workload.Model{model}, Objective: core.MinDelay,
		HWSamples: 6, SWSamples: 8, Eval: maestro.New(),
	}
	for _, strat := range []core.Strategy{
		core.NewSpotlight(), search.NewRandom(), search.NewGenetic(),
		search.NewConfuciuX(), search.NewHASCO(),
	} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.Seed = int64(i + 1)
				// Tiny sample budgets legitimately strand restricted
				// strategies on some seeds; that is a measured outcome,
				// not a bench failure.
				if _, err := core.Run(rc, strat); err != nil && !errors.Is(err, core.ErrNoFeasible) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaestroEvaluate measures the primary cost model's single-point
// evaluation latency — the inner loop of every search.
func BenchmarkMaestroEvaluate(b *testing.B) {
	m := maestro.New()
	a := hw.EyerissEdge().Accel
	l := workload.ResNet50().Layers[6]
	rng := rand.New(rand.NewSource(1))
	s := sched.Free().Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.Evaluate(a, s, l)
	}
}

// BenchmarkMaestroEvaluateBatch compares the batched fast path against
// per-call Evaluate at a search-round-shaped batch size: the same 64
// candidate schedules for one (accelerator, layer) pair, either through
// one EvaluateBatch call (per-layer setup amortized, errors built
// lazily) or 64 Evaluate calls. Run with -benchmem; the acceptance bar
// (BENCH_6.json) is ≥2× items/sec and ≥5× fewer allocs/op batched.
func BenchmarkMaestroEvaluateBatch(b *testing.B) {
	m := maestro.New()
	a := hw.EyerissEdge().Accel
	l := workload.ResNet50().Layers[6]
	rng := rand.New(rand.NewSource(1))
	free := sched.Free()
	const batch = 64
	ss := make([]sched.Schedule, batch)
	for i := range ss {
		ss[i] = free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		if i%7 == 3 { // salt with capacity-invalid candidates, as real rounds have
			ss[i].T2[workload.DimK] = l.K + 1
		}
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = m.EvaluateBatch(a, ss, l)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range ss {
				_, _ = m.Evaluate(a, s, l)
			}
		}
	})
}

// BenchmarkTransformerLayerSearch is the ROADMAP item 5 end-to-end
// measurement: one full per-layer software search over the Transformer's
// layers (the workload whose GEMM-heavy shapes made per-call evaluation
// the bottleneck), batched versus sequential candidate evaluation.
// Results are bit-identical; only throughput differs.
func BenchmarkTransformerLayerSearch(b *testing.B) {
	for _, nobatch := range []bool{false, true} {
		name := "batched"
		if nobatch {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg("Transformer")
			cfg.HWSamples = 2
			cfg.SWSamples = 64
			cfg.DisableBatch = nobatch
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				_, err := exp.Fig6(cfg)
				tolerate(b, err)
			}
		})
	}
}

// BenchmarkTimeloopEvaluate measures the second model's evaluation
// latency.
func BenchmarkTimeloopEvaluate(b *testing.B) {
	m := timeloop.New()
	a := hw.EyerissEdge().Accel
	l := workload.ResNet50().Layers[6]
	rng := rand.New(rand.NewSource(1))
	s := sched.Free().Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.Evaluate(a, s, l)
	}
}

// BenchmarkScheduleSampling measures the candidate generator that feeds
// every acquisition batch.
func BenchmarkScheduleSampling(b *testing.B) {
	l := workload.ResNet50().Layers[6]
	rng := rand.New(rand.NewSource(1))
	free := sched.Free()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = free.Random(rng, l, 512, 128<<10)
	}
}

// BenchmarkFeatureTransform measures the Figure 4 feature computation.
func BenchmarkFeatureTransform(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := hw.EdgeSpace().Random(rng)
	l := workload.ResNet50().Layers[6]
	s := sched.Free().Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
	p := core.Point{Accel: a, Sched: s, Layer: l}
	fs := core.SoftwareFeatures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Transform(fs, p)
	}
}

// BenchmarkDABOSuggest measures one acquisition step at the paper's
// full budget: 64 candidates ranked on a surrogate trained on 100
// observations of the 11-dimensional Figure 4 feature space, with a
// refit forced every iteration (the worst case the search loop can hit).
func BenchmarkDABOSuggest(b *testing.B) {
	const nObs, dim, batch = 100, 11, 64
	rng := rand.New(rand.NewSource(1))
	point := func() []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		return x
	}
	xs := make([][]float64, nObs)
	ys := make([]float64, nObs)
	for i := range xs {
		xs[i] = point()
		ys[i] = 1 + rng.Float64()
	}
	cands := make([][]float64, batch)
	for i := range cands {
		cands[i] = point()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh optimizer per iteration keeps the benchmark stationary:
		// each SuggestIndex pays exactly one fit at n=100 followed by a
		// 64-wide batch prediction — the hot path of §V's inner loop.
		d := core.NewDABO(gp.Linear{Bias: 1}, rng, core.WithWarmup(0), core.WithRefitEvery(1))
		for j := range xs {
			d.Observe(xs[j], ys[j])
		}
		_ = d.SuggestIndex(cands)
	}
}

// BenchmarkTopDesignCrossCheck regenerates the §VII-F recommendation:
// re-evaluate the search's top designs on the second analytical model.
func BenchmarkTopDesignCrossCheck(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := exp.TopDesignCrossCheck(cfg, "Transformer")
		tolerate(b, err)
	}
}

// BenchmarkSimValidation runs the analytical-vs-simulator validation.
func BenchmarkSimValidation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := exp.SimCheck(cfg, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNASJointSearch runs the §VIII future-work extension: joint
// model/hardware/schedule search with a quality floor.
func BenchmarkNASJointSearch(b *testing.B) {
	cfg := nas.SearchConfig{
		CoDesign: core.RunConfig{
			Space:     hw.EdgeSpace(),
			Budget:    hw.EdgeBudget(),
			Objective: core.MinEDP,
			HWSamples: 3,
			SWSamples: 5,
			Eval:      maestro.New(),
		},
		QualityFloor: 0.5,
		ArchSamples:  4,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		_, err := nas.Search(cfg)
		tolerate(b, err)
	}
}

// BenchmarkOracleEnumeration measures exhaustive schedule enumeration of
// a tiny layer — the ground-truth generator the searchers are validated
// against.
func BenchmarkOracleEnumeration(b *testing.B) {
	a := hw.Accel{PEs: 16, Width: 4, SIMDLanes: 2, RFKB: 64, L2KB: 64, NoCBW: 64}
	l := workload.Conv("tiny", 1, 4, 2, 1, 1, 4, 4)
	opts := oracle.Options{Orders: oracle.StructuredOrders()[:2]}
	for i := 0; i < b.N; i++ {
		if _, err := oracle.BestSchedule(maestro.New(), core.MinDelay, a, l, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateTrace measures the trace-driven simulator on a
// moderate loop nest.
func BenchmarkSimulateTrace(b *testing.B) {
	a := hw.EyerissEdge().Accel
	l := workload.Conv("t", 1, 16, 8, 3, 3, 10, 10)
	var s sched.Schedule
	for i, d := range workload.AllDims {
		size := l.Size(d)
		s.T2[i] = size
		if size%2 == 0 {
			s.T2[i] = size / 2
		}
		s.T1[i] = 1
	}
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll, s.InnerUnroll = workload.DimK, workload.DimC
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(a, s, l, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
