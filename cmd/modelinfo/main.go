// Command modelinfo prints the CONV-space layer tables of the evaluation
// models: shapes, repeat counts, MAC counts, and the size of each layer's
// software design space.
//
// Usage:
//
//	modelinfo            # all five models, summary only
//	modelinfo -layers    # include per-layer tables
//	modelinfo -models VGG16,Transformer -layers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func main() {
	var (
		modelsFlag = flag.String("models", "", "comma-separated model names (default: all)")
		layers     = flag.Bool("layers", false, "print per-layer tables")
		extended   = flag.Bool("extended", false, "include the extended zoo (AlexNet, ResNet-18, BERT-base)")
	)
	flag.Parse()

	var models []workload.Model
	if *modelsFlag == "" {
		models = workload.Models()
		if *extended {
			models = append(models, workload.ExtendedModels()...)
		}
	} else {
		for _, name := range strings.Split(*modelsFlag, ",") {
			m, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "modelinfo:", err)
				os.Exit(1)
			}
			models = append(models, m)
		}
	}

	for _, m := range models {
		var unique, total int
		for _, l := range m.Layers {
			unique++
			total += l.Repeat
		}
		fmt.Printf("%-12s %3d unique layers (%3d with repeats)  %6.2f GMACs\n",
			m.Name, unique, total, float64(m.TotalMACs())/1e9)
		if !*layers {
			continue
		}
		fmt.Printf("  %-12s %-6s %5s %5s %5s %3s %3s %5s %5s %3s %3s %12s %10s\n",
			"layer", "op", "N", "K", "C", "R", "S", "X", "Y", "str", "rep", "MACs", "sw space")
		for _, l := range m.Layers {
			fmt.Printf("  %-12s %-6s %5d %5d %5d %3d %3d %5d %5d %3d %3d %12d %10.2g\n",
				l.Name, l.Op, l.N, l.K, l.C, l.R, l.S, l.X, l.Y, l.StrideX, l.Repeat,
				l.MACs(), sched.SpaceSize(l))
		}
	}
}
