// Command promcheck validates Prometheus text-exposition (version 0.0.4)
// input against the strict subset spotlightd emits: HELP/TYPE ordering,
// name and label syntax, sorted series, finite values, and histogram
// invariants (cumulative buckets, +Inf, _sum/_count agreement). It reads
// a scrape from a file or stdin and exits nonzero on the first
// violation, so CI can pipe `curl .../metrics` straight into it.
//
// Examples:
//
//	curl -s -H 'Accept: text/plain' localhost:8080/metrics | promcheck -
//	promcheck scrape.prom
package main

import (
	"fmt"
	"io"
	"os"

	"spotlight/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: promcheck FILE  (use - for stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if name := os.Args[1]; name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if err := obs.ValidatePrometheus(data); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%d bytes: exposition OK\n", len(data))
}
