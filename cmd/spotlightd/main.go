// Command spotlightd is the co-design job server: the Spotlight search
// and the paper's experiment harness behind an HTTP/JSON API, so many
// searches share one process, one memo cache, and one persistent
// evaluation journal. Jobs queue FIFO onto a bounded worker pool;
// per-job trace events stream over SSE in the same JSONL taxonomy the
// CLIs' -trace flag writes; /metrics and /debug/pprof/* serve live
// introspection. Results are bit-identical to the CLI path — the server
// and the CLIs run the same internal/engine orchestration.
//
// Examples:
//
//	spotlightd -addr 127.0.0.1:8077 -jobs 2 -cache-dir /var/cache/spotlight
//	curl -s localhost:8077/jobs -d '{"kind":"experiment","steps":["fig6"],"eval":"sim,cache,stats"}'
//	curl -sN localhost:8077/jobs/job-1/trace
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"spotlight/internal/engine"
	"spotlight/internal/obs"
	"spotlight/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spotlightd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8077", "listen address for the job API, /metrics, and /debug/pprof/* (\":0\" picks a port)")
		jobs     = flag.Int("jobs", 2, "jobs run concurrently; further submissions queue FIFO")
		cacheDir = flag.String("cache-dir", "", "persist evaluation results to a crash-safe journal in this directory, shared by every job (results are bit-identical warm or cold)")
		drain    = flag.Duration("drain", 30*time.Second, "how long a shutdown signal waits for running jobs before canceling them")
	)
	flag.Parse()

	// One registry serves /metrics; its tracer sees every job's events
	// and the shared pipelines' cache traffic, so concurrent duplicate
	// jobs surface as trace.cache.hit counters.
	reg := obs.NewRegistry()
	runner := engine.NewRunner(engine.RunnerConfig{
		Concurrency: *jobs,
		CacheDir:    *cacheDir,
		Tracer:      obs.NewMetricsTracer(reg),
	})
	srv := serve.New(runner, reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "spotlightd: serving on http://%s (submit: POST /jobs; metrics: /metrics)\n", ln.Addr())

	// SIGINT/SIGTERM drain cooperatively: stop accepting jobs, let
	// running ones finish (up to -drain), flush the cache journals, and
	// only then stop the HTTP server — so trace subscribers see their
	// streams end rather than drop.
	ctx, stop := engine.ShutdownContext(context.Background())
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "spotlightd: shutting down: draining jobs (up to %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := runner.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "spotlightd: disk cache:", err)
	}
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	return hsrv.Shutdown(httpCtx)
}
