// Command experiments regenerates the paper's tables and figures. Each
// figure or section experiment maps to one driver in internal/exp; the
// results are written as CSV files (one per figure) into -out and
// summarized on stdout.
//
// Examples:
//
//	experiments -fig 6                 # Figure 6 at quick scale
//	experiments -fig 6,9,10 -paper     # paper-scale sample budgets
//	experiments -exp surrogate         # §VII-D surrogate accuracy
//	experiments -all -models ResNet-50 # everything, one model
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/exp"
	"spotlight/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figs      = flag.String("fig", "", "comma-separated figure numbers to regenerate (6,7,8,9,10,11)")
		exps      = flag.String("exp", "", "comma-separated section experiments (surrogate, discussion, timeloop, topdesigns, simcheck, kernels)")
		all       = flag.Bool("all", false, "run every figure and experiment")
		paper     = flag.Bool("paper", false, "use paper-scale sample budgets (100/100, 10 trials)")
		hwSamples = flag.Int("hw", 0, "override hardware samples")
		swSamples = flag.Int("sw", 0, "override software samples")
		trials    = flag.Int("trials", 0, "override trial count")
		seed      = flag.Int64("seed", 1, "random seed")
		models    = flag.String("models", "", "comma-separated models (default: all five)")
		objective = flag.String("objective", "delay", "objective for Figure 6/10/11: delay or edp")
		outDir    = flag.String("out", "results", "directory for CSV output")
		parallel  = flag.Bool("parallel", false, "run independent trials concurrently")
		workers   = flag.Int("workers", 0, "concurrent layer searches per hardware sample (0 = GOMAXPROCS, 1 = sequential; results are bit-identical at every setting)")
		noBatch   = flag.Bool("nobatch", false, "disable the batched candidate-evaluation fast path (results are bit-identical either way; for A/B verification and bisecting)")
		evalSpec  = flag.String("eval", "maestro",
			"evaluation pipeline spec: backend[,middleware...] — backends: "+
				strings.Join(eval.Backends(), ", ")+"; middlewares: cache, diskcache(path=FILE), guard, stats")
		cacheDir  = flag.String("cache-dir", "", "persist evaluation results to a crash-safe journal in this directory and reuse them across runs (CSVs are byte-identical warm or cold; disk faults degrade to in-memory evaluation)")
		evalStats = flag.Bool("eval-stats", false, "print per-backend evaluation and cache statistics at exit")

		traceFile   = flag.String("trace", "", "write structured JSONL trace events to this file (observe-only: every CSV is byte-identical with or without; inspect with tracestat)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/* on this address while running, e.g. 127.0.0.1:6060 (\":0\" picks a port)")
	)
	flag.Parse()

	tele, err := obs.StartTelemetry(*traceFile, *metricsAddr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := tele.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", cerr)
		} else if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", tele.Events(), *traceFile)
		}
	}()
	if tele.Addr != "" {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", tele.Addr)
	}

	cfg := exp.Default()
	if *paper {
		cfg = exp.Paper()
	}
	cfg.Seed = *seed
	if *hwSamples > 0 {
		cfg.HWSamples = *hwSamples
	}
	if *swSamples > 0 {
		cfg.SWSamples = *swSamples
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Parallel = *parallel
	cfg.Workers = *workers
	cfg.DisableBatch = *noBatch
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			cfg.Models = append(cfg.Models, strings.TrimSpace(m))
		}
	}
	switch *objective {
	case "delay":
		cfg.Objective = core.MinDelay
	case "edp":
		cfg.Objective = core.MinEDP
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	// Build the pipeline here rather than letting exp normalize the spec:
	// sharing one pipeline across every requested step lets the memo cache
	// deduplicate evaluations between figures, and gives us a stats layer
	// to report from at exit.
	cfg.EvalSpec = *evalSpec
	cfg.Tracer = tele.Tracer
	pipe, err := eval.FromSpec(*evalSpec, eval.SpecOptions{
		EnsureStats: true,
		Tracer:      tele.Tracer,
		CacheDir:    *cacheDir,
	})
	if err != nil {
		var unknown *eval.UnknownBackendError
		if errors.As(err, &unknown) {
			fmt.Fprintln(os.Stderr, "experiments:", unknown)
			flag.Usage()
			os.Exit(2)
		}
		return err
	}
	cfg.Eval = pipe
	defer func() {
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: disk cache:", cerr)
		}
	}()

	// The figure drivers have no cancellation plumbing (each trial is
	// minutes at most), so SIGINT/SIGTERM are handled here directly: flush
	// the persistent cache journal and the trace sink, then exit. A torn
	// CSV is regenerated by rerunning; the journal must not lose the
	// evaluations already paid for. SIGKILL-grade crashes are covered by
	// the journal's scan-and-truncate recovery instead.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "experiments: %v: flushing disk cache and trace\n", sig)
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: disk cache:", cerr)
		}
		if cerr := tele.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", cerr)
		}
		os.Exit(130)
	}()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want["fig"+f] = true
		}
	}
	for _, e := range strings.Split(*exps, ",") {
		if e = strings.TrimSpace(e); e != "" {
			want[e] = true
		}
	}
	if *all {
		for _, k := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"surrogate", "discussion", "timeloop", "topdesigns", "simcheck", "kernels"} {
			want[k] = true
		}
	}
	if len(want) == 0 {
		return fmt.Errorf("nothing to do: pass -fig, -exp, or -all")
	}

	runner := &runner{cfg: cfg, outDir: *outDir}
	steps := []struct {
		key string
		fn  func() error
	}{
		{"fig6", runner.fig6},
		{"fig7", runner.fig7},
		{"fig8", runner.fig8},
		{"fig9", runner.fig9},
		{"fig10", runner.runFig10},
		{"fig11", runner.runFig11},
		{"surrogate", runner.surrogate},
		{"discussion", runner.discussion},
		{"timeloop", runner.timeloop},
		{"topdesigns", runner.topDesigns},
		{"simcheck", runner.simCheck},
		{"kernels", runner.kernels},
	}
	for _, s := range steps {
		if !want[s.key] {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s ==\n", s.key)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.key, err)
		}
		fmt.Printf("   done in %.1fs\n", time.Since(start).Seconds())
	}
	if *evalStats {
		fmt.Print(pipe.Report())
	}
	return nil
}

type runner struct {
	cfg    exp.Config
	outDir string
	fig10  map[string][]exp.Curve // cached for fig11
}

func (r *runner) writeCSV(name string, write func(f *os.File) error) error {
	path := filepath.Join(r.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:allow closecheck(the write already failed; that error is reported instead)
		return err
	}
	// Close errors are where buffered write failures surface; "wrote" is
	// only printed for files that actually landed.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}

func (r *runner) fig6() error {
	rows, err := exp.Fig6(r.cfg)
	if err != nil {
		return err
	}
	printRows(rows)
	return r.writeCSV("fig6.csv", func(f *os.File) error { return exp.WriteRows(f, rows) })
}

func (r *runner) fig7() error {
	res, err := exp.Fig7(r.cfg)
	if err != nil {
		return err
	}
	fmt.Println(" EDP:")
	printRows(res.EDP)
	fmt.Println(" delay:")
	printRows(res.Delay)
	if err := r.writeCSV("fig7_edp.csv", func(f *os.File) error { return exp.WriteRows(f, res.EDP) }); err != nil {
		return err
	}
	return r.writeCSV("fig7_delay.csv", func(f *os.File) error { return exp.WriteRows(f, res.Delay) })
}

func (r *runner) fig8() error {
	res, err := exp.Fig8(r.cfg)
	if err != nil {
		return err
	}
	fmt.Println(" EDP:")
	printRows(res.EDP)
	fmt.Println(" delay:")
	printRows(res.Delay)
	if err := r.writeCSV("fig8_edp.csv", func(f *os.File) error { return exp.WriteRows(f, res.EDP) }); err != nil {
		return err
	}
	return r.writeCSV("fig8_delay.csv", func(f *os.File) error { return exp.WriteRows(f, res.Delay) })
}

func (r *runner) fig9() error {
	res, err := exp.Fig9(r.cfg)
	if err != nil {
		return err
	}
	for _, model := range exp.SortedKeys(res.Importance) {
		fmt.Printf("   %-12s top feature: %s\n", model, topFeature(res.Features, res.Importance[model]))
	}
	header, rows := exp.Fig9Rows(res)
	return r.writeCSV("fig9.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

// runFig10 runs Figure 10 and caches the curves so Figure 11 can reuse
// the same runs, as in the paper.
func (r *runner) runFig10() error {
	{
		curves, err := exp.Fig10(r.cfg)
		if err != nil {
			return err
		}
		r.fig10 = curves
		for _, model := range exp.SortedKeys(curves) {
			for _, stat := range exp.EfficiencyStats(curves[model]) {
				fmt.Printf("   %-12s %-13s %4d samples, %.0f%% feasible, %.1f%% beat random's best\n",
					model, stat.Tool, stat.Samples, 100*stat.FeasibleFraction, 100*stat.BeatsRandomBest)
			}
			for _, c := range curves[model] {
				sum := c.FinalSummary()
				fmt.Printf("   %-12s %-13s final best: min=%.4g median=%.4g max=%.4g\n",
					model, c.Tool, sum.Min, sum.Median, sum.Max)
			}
		}
		header, rows := exp.Fig10Rows(curves)
		return r.writeCSV("fig10.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
	}
}

// runFig11 emits Figure 11 from cached Figure 10 curves, running Figure
// 10 first if it was not requested.
func (r *runner) runFig11() error {
	{
		if r.fig10 == nil {
			curves, err := exp.Fig10(r.cfg)
			if err != nil {
				return err
			}
			r.fig10 = curves
		}
		cdfs := exp.Fig11(r.fig10)
		header, rows := exp.Fig11Rows(cdfs)
		return r.writeCSV("fig11.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
	}
}

func (r *runner) surrogate() error {
	res, err := exp.SurrogateAccuracy(r.cfg, 2000)
	if err != nil {
		return err
	}
	header := []string{"kernel", "spearman_edp", "spearman_delay", "top_quintile", "train", "test"}
	var rows [][]string
	for _, s := range res {
		fmt.Printf("   %-9s ρ(EDP)=%.4f ρ(delay)=%.4f top-20%%=%.1f%%\n",
			s.Kernel, s.SpearmanEDP, s.SpearmanDel, 100*s.TopQuintile)
		rows = append(rows, []string{
			s.Kernel,
			strconv.FormatFloat(s.SpearmanEDP, 'g', 4, 64),
			strconv.FormatFloat(s.SpearmanDel, 'g', 4, 64),
			strconv.FormatFloat(s.TopQuintile, 'g', 4, 64),
			strconv.Itoa(s.TrainSize), strconv.Itoa(s.TestSize),
		})
	}
	return r.writeCSV("surrogate.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

func (r *runner) discussion() error {
	model := "ResNet-50"
	if len(r.cfg.Models) > 0 {
		model = r.cfg.Models[0]
	}
	rows, err := exp.Discussion(r.cfg, model)
	if err != nil {
		return err
	}
	header := []string{"config", "throughput_per_nJ", "rel_to_spotlight", "rf_input_reuse", "l2_input_reuse", "array"}
	var out [][]string
	for _, d := range rows {
		fmt.Printf("   %-14s tput/J=%.4g (Spotlight is %.2gx)  reuse RF=%.3g L2=%.3g  array=%dx%d\n",
			d.Config, d.ThroughputPerJ, d.RelThroughputPerJ, d.RFInputReuse, d.L2InputReuse,
			d.ArrayHeight, d.ArrayWidth)
		out = append(out, []string{
			d.Config,
			strconv.FormatFloat(d.ThroughputPerJ, 'g', 6, 64),
			strconv.FormatFloat(d.RelThroughputPerJ, 'g', 4, 64),
			strconv.FormatFloat(d.RFInputReuse, 'g', 4, 64),
			strconv.FormatFloat(d.L2InputReuse, 'g', 4, 64),
			fmt.Sprintf("%dx%d", d.ArrayHeight, d.ArrayWidth),
		})
	}
	return r.writeCSV("discussion.csv", func(f *os.File) error { return exp.WriteTable(f, header, out) })
}

func (r *runner) timeloop() error {
	names := r.cfg.Models
	if len(names) == 0 {
		names = []string{"VGG16", "ResNet-50", "MobileNetV2", "MnasNet", "Transformer"}
	}
	header := []string{"model", "layers", "top20_overlap", "bottom20_overlap", "spearman"}
	var rows [][]string
	for _, name := range names {
		res, err := exp.CrossModelAgreement(r.cfg, name, 100)
		if err != nil {
			return err
		}
		fmt.Printf("   %-12s layers=%d top-20%%=%.1f%% bottom-20%%=%.1f%% ρ=%.3f\n",
			res.Model, res.Layers, 100*res.MeanTopOverlap, 100*res.MeanBotOverlap, res.MeanSpearman)
		rows = append(rows, []string{
			res.Model, strconv.Itoa(res.Layers),
			strconv.FormatFloat(res.MeanTopOverlap, 'g', 4, 64),
			strconv.FormatFloat(res.MeanBotOverlap, 'g', 4, 64),
			strconv.FormatFloat(res.MeanSpearman, 'g', 4, 64),
		})
	}
	return r.writeCSV("timeloop.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

func (r *runner) topDesigns() error {
	model := "ResNet-50"
	if len(r.cfg.Models) > 0 {
		model = r.cfg.Models[0]
	}
	res, err := exp.TopDesignCrossCheck(r.cfg, model)
	if err != nil {
		return err
	}
	fmt.Printf("   %s: %d top designs, rank agreement ρ=%.3f, second model's favorite is primary rank #%d\n",
		res.Model, len(res.Entries), res.Spearman, res.BestRank)
	header := []string{"rank", "primary", "secondary", "accel"}
	var rows [][]string
	for _, e := range res.Entries {
		rows = append(rows, []string{
			strconv.Itoa(e.Rank),
			strconv.FormatFloat(e.Primary, 'g', 6, 64),
			strconv.FormatFloat(e.Secondary, 'g', 6, 64),
			e.Accel,
		})
	}
	return r.writeCSV("topdesigns.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

func (r *runner) simCheck() error {
	res, err := exp.SimCheck(r.cfg, 60)
	if err != nil {
		return err
	}
	fmt.Printf("   %d/%d schedules match the analytical model exactly; LRU caching saves %.1f%% median DRAM traffic\n",
		res.ExactMatches, res.Schedules, 100*res.CacheSavings.Median)
	header := []string{"schedules", "exact_matches", "saving_min", "saving_median", "saving_max"}
	rows := [][]string{{
		strconv.Itoa(res.Schedules), strconv.Itoa(res.ExactMatches),
		strconv.FormatFloat(res.CacheSavings.Min, 'g', 4, 64),
		strconv.FormatFloat(res.CacheSavings.Median, 'g', 4, 64),
		strconv.FormatFloat(res.CacheSavings.Max, 'g', 4, 64),
	}}
	return r.writeCSV("simcheck.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

func (r *runner) kernels() error {
	model := "ResNet-50"
	if len(r.cfg.Models) > 0 {
		model = r.cfg.Models[0]
	}
	res, err := exp.KernelSearchComparison(r.cfg, model)
	if err != nil {
		return err
	}
	header := []string{"kernel", "min", "median", "max"}
	var rows [][]string
	for _, k := range res {
		fmt.Printf("   %-9s best %s: median=%.4g [%.4g, %.4g]\n",
			k.Kernel, r.cfg.Objective, k.Summary.Median, k.Summary.Min, k.Summary.Max)
		rows = append(rows, []string{
			k.Kernel,
			strconv.FormatFloat(k.Summary.Min, 'g', 6, 64),
			strconv.FormatFloat(k.Summary.Median, 'g', 6, 64),
			strconv.FormatFloat(k.Summary.Max, 'g', 6, 64),
		})
	}
	return r.writeCSV("kernels.csv", func(f *os.File) error { return exp.WriteTable(f, header, rows) })
}

func printRows(rows []exp.Row) {
	for _, r := range rows {
		fmt.Printf("   %-12s %-18s median=%.4g [%.4g, %.4g]  %.3gx Spotlight\n",
			r.Model, r.Config, r.Median, r.Min, r.Max, r.Normalized)
	}
}

func topFeature(names []string, imp []float64) string {
	best := 0
	for i, v := range imp {
		if v > imp[best] {
			best = i
		}
	}
	if best < len(names) {
		return names[best]
	}
	return "?"
}
