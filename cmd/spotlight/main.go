// Command spotlight is the co-design tool: given one or more DL models
// and a hardware budget, it searches the joint hardware/software space
// and emits the optimized accelerator configuration and per-layer
// software schedules, plus an optional CSV convergence history.
//
// It is a thin adapter over internal/engine — flag parsing, file I/O,
// and exit codes live here; the orchestration (spec→config translation,
// checkpoint/resume, signal semantics, result rendering) is the same
// engine code spotlightd serves over HTTP.
//
// Examples:
//
//	spotlight -models ResNet-50 -objective delay
//	spotlight -models VGG16,ResNet-50 -scale cloud -objective edp -hw 100 -sw 100
//	spotlight -models Transformer -strategy spotlight-f -history hist.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/engine"
	"spotlight/internal/eval"
	"spotlight/internal/hw"
	"spotlight/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spotlight:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelsFlag = flag.String("models", "ResNet-50", "comma-separated DL models to co-design for")
		scale      = flag.String("scale", "edge", "hardware scale: edge or cloud")
		objective  = flag.String("objective", "delay", "objective to minimize: delay or edp")
		hwSamples  = flag.Int("hw", 100, "hardware samples")
		swSamples  = flag.Int("sw", 100, "software samples per layer per hardware sample")
		seed       = flag.Int64("seed", 1, "random seed")
		strategy   = flag.String("strategy", "spotlight", "search strategy: spotlight, spotlight-v, spotlight-a, spotlight-f, random, ga, confuciux, hasco")
		evalSpec   = flag.String("eval", "", "evaluation pipeline spec: backend[,middleware...], e.g. \"maestro\", \"sim,cache,guard\" (backends: "+strings.Join(eval.Backends(), ", ")+"; middlewares: cache, diskcache(path=FILE), guard, stats)")
		backend    = flag.String("backend", "", "deprecated alias for -eval with a bare backend name; prefer -eval \"name[,middleware...]\"")
		evalStats  = flag.Bool("eval-stats", false, "print per-backend evaluation and cache statistics after the run")
		historyCSV = flag.String("history", "", "write the per-sample convergence history to this CSV file")
		jsonOut    = flag.String("json", "", "write the winning design (accelerator + schedules) to this JSON file")
		verbose    = flag.Bool("v", false, "print per-layer schedules")
		frontier   = flag.Bool("frontier", false, "print the pareto frontier and the budget-closest selection")
		reevaluate = flag.String("reevaluate", "", "skip the search: load a design JSON (from -json) and re-cost it on the -eval pipeline")

		workers     = flag.Int("workers", 0, "concurrent layer searches per hardware sample (0 = one per core); results are identical at any setting")
		noBatch     = flag.Bool("nobatch", false, "disable the batched candidate-evaluation fast path (results are bit-identical either way; for A/B verification and bisecting)")
		timeout     = flag.Duration("timeout", 0, "overall search deadline (e.g. 30m); on expiry the partial result is reported (0 = none)")
		checkpoint  = flag.String("checkpoint", "", "write a resumable checkpoint to this file after every hardware sample (atomic replace)")
		resumeFrom  = flag.String("resume", "", "resume from a checkpoint file; models, seed, strategy, and budgets must match the original run")
		evalTimeout = flag.Duration("eval-timeout", 0, "abandon any single cost-model evaluation after this long (0 = none)")
		evalRetries = flag.Int("eval-retries", 0, "retries for transient cost-model faults, with exponential backoff")
		cacheDir    = flag.String("cache-dir", "", "persist evaluation results to a crash-safe journal in this directory and reuse them across runs (results are bit-identical warm or cold; disk faults degrade to in-memory evaluation)")

		traceFile   = flag.String("trace", "", "write structured JSONL trace events to this file (observe-only: results are bit-identical with or without; inspect with tracestat)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/* on this address while running, e.g. 127.0.0.1:6060 (\":0\" picks a port)")
	)
	flag.Parse()

	tele, closeTele, err := engine.StartCLITelemetry("spotlight", *traceFile, *metricsAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer closeTele()

	// The whole evaluation stack — backend, memo cache, fault guard,
	// stats — is assembled by internal/eval from one spec string.
	// -eval-timeout / -eval-retries configure the guard layer and force
	// one into the chain if the spec named none.
	spec := *evalSpec
	if spec == "" {
		spec = *backend // deprecated alias: bare backend name
	}
	if spec == "" {
		spec = "maestro"
	}
	pipe, err := eval.FromSpec(spec, eval.SpecOptions{
		Guard: eval.GuardOptions{
			Timeout: *evalTimeout,
			Retries: *evalRetries,
			Backoff: 50 * time.Millisecond,
			Seed:    *seed,
		},
		EnsureStats: true,
		Tracer:      tele.Tracer,
		CacheDir:    *cacheDir,
	})
	if err != nil {
		// An unknown backend is a usage error: say what exists and how
		// to ask for it, instead of a bare failure.
		if unknown, ok := engine.IsUnknownBackend(err); ok {
			fmt.Fprintf(os.Stderr, "spotlight: %v\n\n", unknown)
			flag.Usage()
			os.Exit(2)
		}
		return err
	}
	// The persistent cache journal is flushed and closed on every exit
	// path; a failed flush is surfaced (records may not have hit disk)
	// but — per the degradation contract — never fails the run.
	defer func() {
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "spotlight: disk cache:", cerr)
		}
	}()
	reportStats := func() {
		if *evalStats {
			fmt.Print(pipe.Report())
		}
	}

	obj, err := engine.ResolveObjective(*objective)
	if err != nil {
		return err
	}

	if *reevaluate != "" {
		models, err := engine.ResolveModels(strings.Split(*modelsFlag, ","))
		if err != nil {
			return err
		}
		if err := reevaluateDesign(*reevaluate, pipe, obj, models); err != nil {
			return err
		}
		reportStats()
		return nil
	}

	jobSpec := engine.JobSpec{
		Kind:         engine.KindSearch,
		Models:       strings.Split(*modelsFlag, ","),
		Scale:        *scale,
		Objective:    *objective,
		Strategy:     *strategy,
		HWSamples:    *hwSamples,
		SWSamples:    *swSamples,
		Seed:         *seed,
		Eval:         spec,
		Workers:      *workers,
		DisableBatch: *noBatch,
	}
	opts := engine.SearchOptions{Eval: pipe, Tracer: tele.Tracer}
	if *resumeFrom != "" {
		cp, err := core.ReadCheckpointFile(*resumeFrom)
		if err != nil {
			return err
		}
		opts.Resume = cp
		fmt.Printf("resuming from %s (%d hardware samples done)\n", *resumeFrom, cp.Samples)
	}
	var cper *engine.FileCheckpointer
	if *checkpoint != "" {
		cper = &engine.FileCheckpointer{Path: *checkpoint}
		opts.OnCheckpoint = cper.OnCheckpoint
	}

	// SIGINT, SIGTERM (and -timeout) stop the search cooperatively: the
	// run finishes its current hardware sample's bookkeeping, the last
	// checkpoint on disk stays valid, the disk-cache journal is flushed
	// and closed by the deferred handlers above, and the partial result
	// is reported.
	ctx, stop := engine.ShutdownContext(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := engine.RunSearch(ctx, jobSpec, opts)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		fmt.Fprintln(os.Stderr, "spotlight:", err)
		if cper != nil {
			if saved, werr := cper.SaveLast(); werr != nil {
				fmt.Fprintln(os.Stderr, "spotlight: saving final checkpoint:", werr)
			} else if saved {
				fmt.Fprintf(os.Stderr, "spotlight: checkpoint saved; continue with -resume %s\n", *checkpoint)
			}
		}
		if len(res.History) == 0 {
			return errors.New("stopped before any hardware sample completed")
		}
		if math.IsInf(res.Best.Objective, 1) {
			return fmt.Errorf("no feasible design among the %d completed samples", len(res.History))
		}
		fmt.Printf("partial result after %d of %d hardware samples:\n", len(res.History), *hwSamples)
	}
	fmt.Print(engine.SearchReport(res, obj, *verbose))
	reportStats()
	if *frontier {
		_, budget, err := engine.ResolveScale(*scale)
		if err != nil {
			return err
		}
		reportFrontier(res, budget)
	}

	if *historyCSV != "" {
		if err := writeFile(*historyCSV, engine.HistoryCSV(res)); err != nil {
			return err
		}
		fmt.Printf("history written to %s\n", *historyCSV)
	}
	if *jsonOut != "" {
		data, err := engine.DesignJSON(res, obj)
		if err != nil {
			return err
		}
		if err := writeFile(*jsonOut, data); err != nil {
			return err
		}
		fmt.Printf("design written to %s\n", *jsonOut)
	}
	return nil
}

// writeFile writes an artifact, checking Close — on many filesystems it
// is where a write failure surfaces — so "written to" is never printed
// for a file that did not land.
func writeFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //lint:allow closecheck(the write already failed; that error is reported instead)
		return err
	}
	return f.Close()
}

// reevaluateDesign loads a previously exported design and re-costs its
// schedules on the selected backend, printing per-layer and aggregate
// results — the §VII-F workflow of carrying a design to another
// evaluation medium.
func reevaluateDesign(path string, ev core.Evaluator, obj core.Objective, models []workload.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow closecheck(read-only file: the close error carries no data)
	e, err := core.ReadJSON(f)
	if err != nil {
		return err
	}
	accel := hw.Accel{
		PEs: e.Accel.PEs, Width: e.Accel.Width, SIMDLanes: e.Accel.SIMDLanes,
		RFKB: e.Accel.RFKB, L2KB: e.Accel.L2KB, NoCBW: e.Accel.NoCBW,
	}
	layersByName := map[string]workload.Layer{}
	for _, m := range models {
		for _, l := range m.Layers {
			layersByName[m.Name+"/"+l.Name] = l
		}
	}
	fmt.Printf("re-evaluating %s design on backend %q\n", e.Tool, ev.Name())
	var energy, delay float64
	infeasible := 0
	for _, le := range e.Layers {
		layer, ok := layersByName[le.Model+"/"+le.Layer]
		if !ok {
			return fmt.Errorf("layer %s/%s not found in -models; pass the same models the design was built for", le.Model, le.Layer)
		}
		s, err := core.ScheduleFromExport(le)
		if err != nil {
			return err
		}
		c, err := ev.Evaluate(accel, s, layer)
		if err != nil {
			infeasible++
			fmt.Printf("  %-16s infeasible on this backend (%v)\n", le.Layer, err)
			continue
		}
		rep := float64(layer.Repeat)
		energy += rep * c.EnergyNJ
		delay += rep * c.DelayCycles
		fmt.Printf("  %-16s delay=%.4g (was %.4g)  energy=%.4g nJ\n",
			le.Layer, c.DelayCycles, le.DelayCycles, c.EnergyNJ)
	}
	if infeasible > 0 {
		fmt.Printf("%d layers infeasible on this backend — re-tune with -strategy spotlight -eval %s\n",
			infeasible, ev.Name())
		return nil
	}
	fmt.Printf("aggregate %s = %.6g (was %.6g on %s)\n",
		obj, core.AggregateObjective(obj, energy, delay), e.Value, e.Tool)
	return nil
}

// reportFrontier prints the (objective, area, power) pareto set and the
// §VI-B selection: the frontier design closest to the budget without
// exceeding it.
func reportFrontier(res core.Result, budget hw.Budget) {
	fmt.Printf("pareto frontier (%d designs):\n", len(res.Frontier))
	var fr core.ParetoFrontier
	for _, d := range res.Frontier {
		fr.Add(d)
		fmt.Printf("  obj=%-12.5g area=%6.2f mm²  power=%7.1f mW  %s\n",
			d.Objective, d.Accel.AreaMM2(), d.Accel.PeakPowerMW(), d.Accel)
	}
	if pick, ok := fr.SelectWithinBudget(budget); ok {
		fmt.Printf("budget-closest selection: obj=%.5g %s\n", pick.Objective, pick.Accel)
	}
}
