// Command spotlight is the co-design tool: given one or more DL models
// and a hardware budget, it searches the joint hardware/software space
// and emits the optimized accelerator configuration and per-layer
// software schedules, plus an optional CSV convergence history.
//
// Examples:
//
//	spotlight -models ResNet-50 -objective delay
//	spotlight -models VGG16,ResNet-50 -scale cloud -objective edp -hw 100 -sw 100
//	spotlight -models Transformer -strategy spotlight-f -history hist.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/exp"
	"spotlight/internal/hw"
	"spotlight/internal/obs"
	"spotlight/internal/search"
	"spotlight/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spotlight:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelsFlag = flag.String("models", "ResNet-50", "comma-separated DL models to co-design for")
		scale      = flag.String("scale", "edge", "hardware scale: edge or cloud")
		objective  = flag.String("objective", "delay", "objective to minimize: delay or edp")
		hwSamples  = flag.Int("hw", 100, "hardware samples")
		swSamples  = flag.Int("sw", 100, "software samples per layer per hardware sample")
		seed       = flag.Int64("seed", 1, "random seed")
		strategy   = flag.String("strategy", "spotlight", "search strategy: spotlight, spotlight-v, spotlight-a, spotlight-f, random, ga, confuciux, hasco")
		evalSpec   = flag.String("eval", "", "evaluation pipeline spec: backend[,middleware...], e.g. \"maestro\", \"sim,cache,guard\" (backends: "+strings.Join(eval.Backends(), ", ")+"; middlewares: cache, diskcache(path=FILE), guard, stats)")
		backend    = flag.String("backend", "", "deprecated alias for -eval with a bare backend name; prefer -eval \"name[,middleware...]\"")
		evalStats  = flag.Bool("eval-stats", false, "print per-backend evaluation and cache statistics after the run")
		historyCSV = flag.String("history", "", "write the per-sample convergence history to this CSV file")
		jsonOut    = flag.String("json", "", "write the winning design (accelerator + schedules) to this JSON file")
		verbose    = flag.Bool("v", false, "print per-layer schedules")
		frontier   = flag.Bool("frontier", false, "print the pareto frontier and the budget-closest selection")
		reevaluate = flag.String("reevaluate", "", "skip the search: load a design JSON (from -json) and re-cost it on the -eval pipeline")

		workers     = flag.Int("workers", 0, "concurrent layer searches per hardware sample (0 = one per core); results are identical at any setting")
		noBatch     = flag.Bool("nobatch", false, "disable the batched candidate-evaluation fast path (results are bit-identical either way; for A/B verification and bisecting)")
		timeout     = flag.Duration("timeout", 0, "overall search deadline (e.g. 30m); on expiry the partial result is reported (0 = none)")
		checkpoint  = flag.String("checkpoint", "", "write a resumable checkpoint to this file after every hardware sample (atomic replace)")
		resumeFrom  = flag.String("resume", "", "resume from a checkpoint file; models, seed, strategy, and budgets must match the original run")
		evalTimeout = flag.Duration("eval-timeout", 0, "abandon any single cost-model evaluation after this long (0 = none)")
		evalRetries = flag.Int("eval-retries", 0, "retries for transient cost-model faults, with exponential backoff")
		cacheDir    = flag.String("cache-dir", "", "persist evaluation results to a crash-safe journal in this directory and reuse them across runs (results are bit-identical warm or cold; disk faults degrade to in-memory evaluation)")

		traceFile   = flag.String("trace", "", "write structured JSONL trace events to this file (observe-only: results are bit-identical with or without; inspect with tracestat)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/* on this address while running, e.g. 127.0.0.1:6060 (\":0\" picks a port)")
	)
	flag.Parse()

	tele, err := obs.StartTelemetry(*traceFile, *metricsAddr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := tele.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "spotlight: trace:", cerr)
		} else if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", tele.Events(), *traceFile)
		}
	}()
	if tele.Addr != "" {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", tele.Addr)
	}

	var models []workload.Model
	for _, name := range strings.Split(*modelsFlag, ",") {
		m, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		models = append(models, m)
	}

	var space hw.Space
	var budget hw.Budget
	switch *scale {
	case "edge":
		space, budget = hw.EdgeSpace(), hw.EdgeBudget()
	case "cloud":
		space, budget = hw.CloudSpace(), hw.CloudBudget()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	var obj core.Objective
	switch *objective {
	case "delay":
		obj = core.MinDelay
	case "edp":
		obj = core.MinEDP
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	// The whole evaluation stack — backend, memo cache, fault guard,
	// stats — is assembled by internal/eval from one spec string.
	// -eval-timeout / -eval-retries configure the guard layer and force
	// one into the chain if the spec named none.
	spec := *evalSpec
	if spec == "" {
		spec = *backend // deprecated alias: bare backend name
	}
	if spec == "" {
		spec = "maestro"
	}
	pipe, err := eval.FromSpec(spec, eval.SpecOptions{
		Guard: eval.GuardOptions{
			Timeout: *evalTimeout,
			Retries: *evalRetries,
			Backoff: 50 * time.Millisecond,
			Seed:    *seed,
		},
		EnsureStats: true,
		Tracer:      tele.Tracer,
		CacheDir:    *cacheDir,
	})
	if err != nil {
		// An unknown backend is a usage error: say what exists and how
		// to ask for it, instead of a bare failure.
		var unknown *eval.UnknownBackendError
		if errors.As(err, &unknown) {
			fmt.Fprintf(os.Stderr, "spotlight: %v\n\n", unknown)
			flag.Usage()
			os.Exit(2)
		}
		return err
	}
	// The persistent cache journal is flushed and closed on every exit
	// path; a failed flush is surfaced (records may not have hit disk)
	// but — per the degradation contract — never fails the run.
	defer func() {
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "spotlight: disk cache:", cerr)
		}
	}()
	reportStats := func() {
		if *evalStats {
			fmt.Print(pipe.Report())
		}
	}

	if *reevaluate != "" {
		if err := reevaluateDesign(*reevaluate, pipe, obj, models); err != nil {
			return err
		}
		reportStats()
		return nil
	}

	strat, err := strategyByName(*strategy)
	if err != nil {
		return err
	}

	cfg := core.RunConfig{
		Models:       models,
		Space:        space,
		Budget:       budget,
		Objective:    obj,
		HWSamples:    *hwSamples,
		SWSamples:    *swSamples,
		Seed:         *seed,
		Eval:         pipe,
		Workers:      *workers,
		Tracer:       tele.Tracer,
		DisableBatch: *noBatch,
	}
	if *resumeFrom != "" {
		cp, err := core.ReadCheckpointFile(*resumeFrom)
		if err != nil {
			return err
		}
		cfg.Resume = cp
		fmt.Printf("resuming from %s (%d hardware samples done)\n", *resumeFrom, cp.Samples)
	}
	var lastCP *core.Checkpoint
	if *checkpoint != "" {
		cfg.OnCheckpoint = func(cp *core.Checkpoint) error {
			lastCP = cp
			return core.WriteCheckpointFile(*checkpoint, cp)
		}
	}

	// SIGINT, SIGTERM (and -timeout) stop the search cooperatively: the
	// run finishes its current hardware sample's bookkeeping, the last
	// checkpoint on disk stays valid, the disk-cache journal is flushed
	// and closed by the deferred handlers above, and the partial result
	// is reported. SIGTERM matters for batch schedulers and container
	// runtimes, which send it (not SIGINT) before killing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := core.RunContext(ctx, cfg, strat)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		fmt.Fprintln(os.Stderr, "spotlight:", err)
		if *checkpoint != "" && lastCP != nil {
			if werr := core.WriteCheckpointFile(*checkpoint, lastCP); werr != nil {
				fmt.Fprintln(os.Stderr, "spotlight: saving final checkpoint:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "spotlight: checkpoint saved; continue with -resume %s\n", *checkpoint)
			}
		}
		if len(res.History) == 0 {
			return errors.New("stopped before any hardware sample completed")
		}
		if math.IsInf(res.Best.Objective, 1) {
			return fmt.Errorf("no feasible design among the %d completed samples", len(res.History))
		}
		fmt.Printf("partial result after %d of %d hardware samples:\n", len(res.History), *hwSamples)
	}
	report(res, obj, *verbose)
	reportStats()
	if *frontier {
		reportFrontier(res, budget)
	}

	if *historyCSV != "" {
		if err := writeHistory(*historyCSV, res); err != nil {
			return err
		}
		fmt.Printf("history written to %s\n", *historyCSV)
	}
	if *jsonOut != "" {
		if err := writeDesign(*jsonOut, res, obj); err != nil {
			return err
		}
		fmt.Printf("design written to %s\n", *jsonOut)
	}
	return nil
}

// writeDesign exports the winning design as JSON. The close error is
// checked — on many filesystems it is where a write failure surfaces —
// so "design written" is never printed for a file that did not land.
func writeDesign(path string, res core.Result, obj core.Objective) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.WriteJSON(f, core.Export(res.Tool, obj, res.Best)); err != nil {
		f.Close() //lint:allow closecheck(the write already failed; that error is reported instead)
		return err
	}
	return f.Close()
}

func strategyByName(name string) (core.Strategy, error) {
	switch name {
	case "spotlight":
		return core.NewSpotlight(), nil
	case "spotlight-v":
		return core.NewSpotlightV(), nil
	case "spotlight-a":
		return core.NewSpotlightA(), nil
	case "spotlight-f":
		return core.NewSpotlightF(), nil
	case "random":
		return search.NewRandom(), nil
	case "ga":
		return search.NewGenetic(), nil
	case "confuciux":
		return search.NewConfuciuX(), nil
	case "hasco":
		return search.NewHASCO(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func report(res core.Result, obj core.Objective, verbose bool) {
	fmt.Printf("tool:      %s\n", res.Tool)
	fmt.Printf("objective: %s = %.6g\n", obj, res.Best.Objective)
	fmt.Printf("accel:     %s\n", res.Best.Accel)
	fmt.Printf("area:      %.2f mm²   peak power: %.1f mW\n",
		res.Best.Accel.AreaMM2(), res.Best.Accel.PeakPowerMW())
	for _, line := range modelObjectiveLines(obj, res.Best) {
		fmt.Print(line)
	}
	if !verbose {
		return
	}
	fmt.Println("schedules:")
	for _, lr := range res.Best.Layers {
		fmt.Printf("  %-10s %-16s delay=%.4g cycles  energy=%.4g nJ  util=%.2f\n",
			lr.Model, lr.Layer.Name, lr.Cost.DelayCycles, lr.Cost.EnergyNJ, lr.Cost.Utilization)
		fmt.Printf("             %s\n", lr.Schedule)
	}
}

// modelObjectiveLines renders the per-model objective breakdown in
// model-name order. core.ModelObjectives returns a map, and ranging over
// it directly (as report once did) printed multi-model runs in a
// different order every invocation — breaking the byte-identical-stdout
// determinism contract the verify flows diff against.
func modelObjectiveLines(obj core.Objective, d core.Design) []string {
	objs := core.ModelObjectives(obj, d)
	models := make([]string, 0, len(objs))
	for m := range objs {
		models = append(models, m)
	}
	sort.Strings(models)
	lines := make([]string, 0, len(models))
	for _, m := range models {
		lines = append(lines, fmt.Sprintf("  %-14s %s = %.6g\n", m, obj, objs[m]))
	}
	return lines
}

// reevaluateDesign loads a previously exported design and re-costs its
// schedules on the selected backend, printing per-layer and aggregate
// results — the §VII-F workflow of carrying a design to another
// evaluation medium.
func reevaluateDesign(path string, ev core.Evaluator, obj core.Objective, models []workload.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow closecheck(read-only file: the close error carries no data)
	e, err := core.ReadJSON(f)
	if err != nil {
		return err
	}
	accel := hw.Accel{
		PEs: e.Accel.PEs, Width: e.Accel.Width, SIMDLanes: e.Accel.SIMDLanes,
		RFKB: e.Accel.RFKB, L2KB: e.Accel.L2KB, NoCBW: e.Accel.NoCBW,
	}
	layersByName := map[string]workload.Layer{}
	for _, m := range models {
		for _, l := range m.Layers {
			layersByName[m.Name+"/"+l.Name] = l
		}
	}
	fmt.Printf("re-evaluating %s design on backend %q\n", e.Tool, ev.Name())
	var energy, delay float64
	infeasible := 0
	for _, le := range e.Layers {
		layer, ok := layersByName[le.Model+"/"+le.Layer]
		if !ok {
			return fmt.Errorf("layer %s/%s not found in -models; pass the same models the design was built for", le.Model, le.Layer)
		}
		s, err := core.ScheduleFromExport(le)
		if err != nil {
			return err
		}
		c, err := ev.Evaluate(accel, s, layer)
		if err != nil {
			infeasible++
			fmt.Printf("  %-16s infeasible on this backend (%v)\n", le.Layer, err)
			continue
		}
		rep := float64(layer.Repeat)
		energy += rep * c.EnergyNJ
		delay += rep * c.DelayCycles
		fmt.Printf("  %-16s delay=%.4g (was %.4g)  energy=%.4g nJ\n",
			le.Layer, c.DelayCycles, le.DelayCycles, c.EnergyNJ)
	}
	if infeasible > 0 {
		fmt.Printf("%d layers infeasible on this backend — re-tune with -strategy spotlight -eval %s\n",
			infeasible, ev.Name())
		return nil
	}
	fmt.Printf("aggregate %s = %.6g (was %.6g on %s)\n",
		obj, core.AggregateObjective(obj, energy, delay), e.Value, e.Tool)
	return nil
}

// reportFrontier prints the (objective, area, power) pareto set and the
// §VI-B selection: the frontier design closest to the budget without
// exceeding it.
func reportFrontier(res core.Result, budget hw.Budget) {
	fmt.Printf("pareto frontier (%d designs):\n", len(res.Frontier))
	var fr core.ParetoFrontier
	for _, d := range res.Frontier {
		fr.Add(d)
		fmt.Printf("  obj=%-12.5g area=%6.2f mm²  power=%7.1f mW  %s\n",
			d.Objective, d.Accel.AreaMM2(), d.Accel.PeakPowerMW(), d.Accel)
	}
	if pick, ok := fr.SelectWithinBudget(budget); ok {
		fmt.Printf("budget-closest selection: obj=%.5g %s\n", pick.Objective, pick.Accel)
	}
}

func writeHistory(path string, res core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(res.History))
	for _, h := range res.History {
		rows = append(rows, []string{
			strconv.Itoa(h.Sample),
			strconv.FormatFloat(h.Elapsed.Seconds(), 'g', 6, 64),
			strconv.FormatFloat(h.Value, 'g', 6, 64),
			strconv.FormatFloat(h.BestSoFar, 'g', 6, 64),
		})
	}
	if err := exp.WriteTable(f, []string{"sample", "elapsed_s", "value", "best_so_far"}, rows); err != nil {
		f.Close() //lint:allow closecheck(the write already failed; that error is reported instead)
		return err
	}
	return f.Close()
}
