// Command tracestat summarizes a structured trace written by spotlight
// or experiments with -trace: where the time went (per event type),
// how the search converged (incumbent improvements by hardware sample),
// and what the evaluation pipeline did (cache, guard, backend paths) —
// all reconstructed from the JSONL stream alone, with no access to the
// run that produced it.
//
// Examples:
//
//	tracestat run.jsonl            # full summary
//	tracestat -check run.jsonl     # validate every line against the event schema
//	spotlight -trace /dev/stdout ... | tracestat -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"spotlight/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate only: parse every line against the event schema and report the first violation")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-check] FILE  (use - for stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var err error
	if *check {
		err = checkTrace(in, os.Stdout)
	} else {
		err = summarize(in, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// readTrace parses a JSONL stream strictly, failing on the first line
// that does not decode or does not satisfy the event schema.
func readTrace(r io.Reader) ([]obs.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var events []obs.Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		e, err := obs.ParseLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// checkTrace is the -check mode: schema-validate every line, verify
// the sequence numbers are dense from 1 (which is what one JSONL sink
// guarantees — a concatenation of several traces is not one trace), and
// verify span well-formedness.
func checkTrace(r io.Reader, w io.Writer) error {
	events, err := readTrace(r)
	if err != nil {
		return err
	}
	for i, e := range events {
		if e.Seq != int64(i)+1 {
			return fmt.Errorf("event %d has seq %d; want dense sequence numbers from 1", i+1, e.Seq)
		}
	}
	total, open, err := checkSpans(events)
	if err != nil {
		return err
	}
	switch {
	case total == 0:
		fmt.Fprintf(w, "%d events: schema OK\n", len(events))
	case open == 0:
		fmt.Fprintf(w, "%d events: schema OK (%d spans, all closed)\n", len(events), total)
	default:
		fmt.Fprintf(w, "%d events: schema OK (%d spans, %d left open)\n", len(events), total, open)
	}
	return nil
}

// checkSpans verifies span causality: span ids are fresh, every parent
// reference — on span.start and on annotated ordinary events — resolves
// to a span that has started, no span starts under an already-closed
// parent, and no span is closed twice. Spans still open at end of trace
// are reported, not rejected: a canceled or crashed run legitimately
// truncates its stream mid-span.
func checkSpans(events []obs.Event) (total, open int, err error) {
	closed := map[int64]bool{} // id → span.end seen
	for i, e := range events {
		switch e.Type {
		case obs.SpanStart:
			if _, seen := closed[e.Span]; seen {
				return 0, 0, fmt.Errorf("event %d: span.start reuses span id %d", i+1, e.Span)
			}
			if e.Parent != 0 {
				done, seen := closed[e.Parent]
				if !seen {
					return 0, 0, fmt.Errorf("event %d: span %d starts under unknown parent %d", i+1, e.Span, e.Parent)
				}
				if done {
					return 0, 0, fmt.Errorf("event %d: span %d starts under already-closed parent %d", i+1, e.Span, e.Parent)
				}
			}
			closed[e.Span] = false
			total++
			open++
		case obs.SpanEnd:
			done, seen := closed[e.Span]
			if !seen {
				return 0, 0, fmt.Errorf("event %d: span.end for unknown span %d", i+1, e.Span)
			}
			if done {
				return 0, 0, fmt.Errorf("event %d: span %d closed twice", i+1, e.Span)
			}
			closed[e.Span] = true
			open--
		default:
			if e.Parent != 0 {
				if _, seen := closed[e.Parent]; !seen {
					return 0, 0, fmt.Errorf("event %d: %s event references unknown parent span %d", i+1, e.Type, e.Parent)
				}
			}
		}
	}
	return total, open, nil
}

// summarize renders the full report.
func summarize(r io.Reader, w io.Writer) error {
	events, err := readTrace(r)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}

	counts := map[obs.EventType]int{}
	durTotal := map[obs.EventType]float64{}
	durCount := map[obs.EventType]int{}
	evalOutcomes := map[string]int{}
	backendPaths := map[string]int{}
	persistCounts := map[string]int{}
	var batchCalls, batchedItems int
	var tool string
	var budgeted, completed int
	type improvement struct {
		sample int
		best   float64
	}
	var conv []improvement
	// Span tree, reconstructed from span.start/span.end pairs. childDur
	// accumulates the cumulative time of direct children so self time is
	// cum − childDur without a second pass.
	type spanRec struct {
		kind     string
		parent   int64
		dur      float64
		childDur float64
		children int
		closed   bool
	}
	spans := map[int64]*spanRec{}
	var spanOrder []int64
	// Individual evals, kept for the slowest-N list and per-backend
	// attribution (Scope on eval.done is the backend name the eval
	// middleware observed).
	type evalRec struct {
		durMS   float64
		outcome string
		scope   string
		parent  int64
	}
	var evals []evalRec
	for _, e := range events {
		counts[e.Type]++
		// span.end durations are reported by the span section below;
		// folding them into the flat phase table would double-count the
		// leaf work they contain.
		if e.DurMS > 0 && e.Type != obs.SpanEnd {
			durTotal[e.Type] += e.DurMS
			durCount[e.Type]++
		}
		switch e.Type {
		case obs.RunStart:
			tool, budgeted = e.Detail, e.N
		case obs.RunEnd:
			completed = e.N
		case obs.Incumbent:
			conv = append(conv, improvement{sample: e.Sample, best: e.Value})
		case obs.EvalDone:
			evalOutcomes[e.Detail]++
			if e.DurMS > 0 {
				evals = append(evals, evalRec{durMS: e.DurMS, outcome: e.Detail, scope: e.Scope, parent: e.Parent})
			}
		case obs.EvalBatch:
			batchCalls++
			batchedItems += e.N
		case obs.BackendPath:
			backendPaths[e.Detail]++
		case obs.CachePersist:
			// Detail is a kind, optionally with a message ("degraded: ...");
			// aggregate by kind.
			kind, _, _ := strings.Cut(e.Detail, ":")
			persistCounts[kind]++
		case obs.SpanStart:
			if _, seen := spans[e.Span]; !seen {
				spans[e.Span] = &spanRec{kind: e.Detail, parent: e.Parent}
				spanOrder = append(spanOrder, e.Span)
				if p := spans[e.Parent]; p != nil {
					p.children++
				}
			}
		case obs.SpanEnd:
			if s := spans[e.Span]; s != nil && !s.closed {
				s.closed = true
				s.dur = e.DurMS
				if p := spans[s.parent]; p != nil {
					p.childDur += e.DurMS
				}
			}
		}
	}

	span := events[len(events)-1].TMS - events[0].TMS
	fmt.Fprintf(w, "trace: %d events spanning %.1f ms\n", len(events), span)
	if tool != "" {
		fmt.Fprintf(w, "run: %s, %d hardware samples budgeted, %d completed\n", tool, budgeted, completed)
	}

	fmt.Fprintf(w, "\nphase time (sum of event durations):\n")
	var typs []obs.EventType
	var grand float64
	for typ, total := range durTotal { //lint:allow maporder(sort.Slice below orders typs before anything is printed)
		typs = append(typs, typ)
		grand += total
	}
	sort.Slice(typs, func(i, j int) bool {
		if durTotal[typs[i]] != durTotal[typs[j]] { //lint:allow floateq(exact inequality picks the tie-break branch; any tolerance would make the sort order depend on it)
			return durTotal[typs[i]] > durTotal[typs[j]]
		}
		return typs[i] < typs[j]
	})
	for _, typ := range typs {
		fmt.Fprintf(w, "  %-18s %10.1f ms  %5.1f%%  (%d events)\n",
			typ, durTotal[typ], 100*durTotal[typ]/grand, durCount[typ])
	}
	if len(typs) == 0 {
		fmt.Fprintf(w, "  (no events carry durations)\n")
	}

	if len(conv) > 0 {
		fmt.Fprintf(w, "\nconvergence (%d of %d proposals improved the incumbent):\n",
			len(conv), counts[obs.HWPropose])
		fmt.Fprintf(w, "  sample        best\n")
		for _, c := range conv {
			fmt.Fprintf(w, "  %6d  %10.6g\n", c.sample, c.best)
		}
	}

	hits, misses := counts[obs.CacheHit], counts[obs.CacheMiss]
	if hits+misses > 0 {
		fmt.Fprintf(w, "\ncache: hits=%d misses=%d leader-panics=%d (%.1f%% hit rate)\n",
			hits, misses, counts[obs.CachePanic], 100*float64(hits)/float64(hits+misses))
	}
	if len(persistCounts) > 0 {
		fmt.Fprintf(w, "persistent cache: %s\n", formatCounts(persistCounts))
	}
	if counts[obs.GuardRetry]+counts[obs.GuardTimeout] > 0 {
		fmt.Fprintf(w, "guard: retries=%d timeouts=%d\n",
			counts[obs.GuardRetry], counts[obs.GuardTimeout])
	}
	if len(evalOutcomes) > 0 {
		fmt.Fprintf(w, "evals: %s\n", formatCounts(evalOutcomes))
	}
	if batchCalls > 0 {
		fmt.Fprintf(w, "batches: %d eval.batch calls covering %d evaluations (mean batch size %.1f)\n",
			batchCalls, batchedItems, float64(batchedItems)/float64(batchCalls))
	}
	if len(backendPaths) > 0 {
		fmt.Fprintf(w, "backend paths: %s\n", formatCounts(backendPaths))
	}
	if n := counts[obs.DABOFit]; n > 0 {
		fmt.Fprintf(w, "surrogate: %d fits, %d degradations\n", n, counts[obs.DABODegraded])
	}

	if len(spanOrder) > 0 {
		open := 0
		for _, id := range spanOrder {
			if !spans[id].closed {
				open++
			}
		}
		if open == 0 {
			fmt.Fprintf(w, "\nspans: %d, all closed\n", len(spanOrder))
		} else {
			fmt.Fprintf(w, "\nspans: %d, %d left open\n", len(spanOrder), open)
		}

		// Per-kind cumulative vs self time. Self time is a span's duration
		// minus its direct children's durations — what the span spent that
		// no child accounts for. Rounding can push the difference a hair
		// negative; clamp.
		type kindAgg struct {
			count int
			cum   float64
			self  float64
		}
		kinds := map[string]*kindAgg{}
		var kindOrder []string
		var rootDur, leafDur float64
		for _, id := range spanOrder {
			s := spans[id]
			if !s.closed {
				continue
			}
			agg := kinds[s.kind]
			if agg == nil {
				agg = &kindAgg{}
				kinds[s.kind] = agg
				kindOrder = append(kindOrder, s.kind)
			}
			agg.count++
			agg.cum += s.dur
			self := s.dur - s.childDur
			if self < 0 {
				self = 0
			}
			agg.self += self
			if spans[s.parent] == nil {
				rootDur += s.dur
			}
			if s.children == 0 {
				leafDur += s.dur
			}
		}
		sort.Slice(kindOrder, func(i, j int) bool {
			a, b := kinds[kindOrder[i]], kinds[kindOrder[j]]
			if a.cum != b.cum { //lint:allow floateq(exact inequality picks the tie-break branch; any tolerance would make the sort order depend on it)
				return a.cum > b.cum
			}
			return kindOrder[i] < kindOrder[j]
		})
		fmt.Fprintf(w, "span time (cumulative vs self):\n")
		fmt.Fprintf(w, "  kind               count     cum ms    self ms\n")
		for _, kind := range kindOrder {
			agg := kinds[kind]
			fmt.Fprintf(w, "  %-18s %5d %10.1f %10.1f\n", kind, agg.count, agg.cum, agg.self)
		}
		if rootDur > 0 {
			fmt.Fprintf(w, "critical path: leaf spans account for %.1f%% of the root span's %.1f ms\n",
				100*leafDur/rootDur, rootDur)
		}

		if len(evals) > 0 {
			sort.SliceStable(evals, func(i, j int) bool { return evals[i].durMS > evals[j].durMS })
			top := evals
			if len(top) > 5 {
				top = top[:5]
			}
			fmt.Fprintf(w, "slowest evals:\n")
			for _, ev := range top {
				scope := ev.scope
				if scope == "" {
					scope = "(unscoped)"
				}
				in := ""
				if s := spans[ev.parent]; s != nil {
					in = "  in " + s.kind
				}
				fmt.Fprintf(w, "  %6.1f ms  %-8s %s%s\n", ev.durMS, ev.outcome, scope, in)
			}
			backendMS := map[string]float64{}
			backendN := map[string]int{}
			for _, ev := range evals {
				scope := ev.scope
				if scope == "" {
					scope = "(unscoped)"
				}
				backendMS[scope] += ev.durMS
				backendN[scope]++
			}
			names := make([]string, 0, len(backendMS))
			for name := range backendMS { //lint:allow maporder(sorted before rendering, two lines down)
				names = append(names, name)
			}
			sort.Strings(names)
			parts := make([]string, 0, len(names))
			for _, name := range names {
				parts = append(parts, fmt.Sprintf("%s=%.1f ms/%d evals", name, backendMS[name], backendN[name]))
			}
			fmt.Fprintf(w, "eval time by backend: %s\n", strings.Join(parts, "  "))
		}
	}
	return nil
}

// formatCounts renders a name→count map as "a=1 b=2", sorted by name for
// deterministic output.
func formatCounts(m map[string]int) string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, m[name]))
	}
	return strings.Join(parts, " ")
}
