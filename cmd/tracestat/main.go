// Command tracestat summarizes a structured trace written by spotlight
// or experiments with -trace: where the time went (per event type),
// how the search converged (incumbent improvements by hardware sample),
// and what the evaluation pipeline did (cache, guard, backend paths) —
// all reconstructed from the JSONL stream alone, with no access to the
// run that produced it.
//
// Examples:
//
//	tracestat run.jsonl            # full summary
//	tracestat -check run.jsonl     # validate every line against the event schema
//	spotlight -trace /dev/stdout ... | tracestat -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"spotlight/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate only: parse every line against the event schema and report the first violation")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-check] FILE  (use - for stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var err error
	if *check {
		err = checkTrace(in, os.Stdout)
	} else {
		err = summarize(in, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// readTrace parses a JSONL stream strictly, failing on the first line
// that does not decode or does not satisfy the event schema.
func readTrace(r io.Reader) ([]obs.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var events []obs.Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		e, err := obs.ParseLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// checkTrace is the -check mode: schema-validate every line and verify
// the sequence numbers are dense from 1, which is what one JSONL sink
// guarantees (a concatenation of several traces is not one trace).
func checkTrace(r io.Reader, w io.Writer) error {
	events, err := readTrace(r)
	if err != nil {
		return err
	}
	for i, e := range events {
		if e.Seq != int64(i)+1 {
			return fmt.Errorf("event %d has seq %d; want dense sequence numbers from 1", i+1, e.Seq)
		}
	}
	fmt.Fprintf(w, "%d events: schema OK\n", len(events))
	return nil
}

// summarize renders the full report.
func summarize(r io.Reader, w io.Writer) error {
	events, err := readTrace(r)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}

	counts := map[obs.EventType]int{}
	durTotal := map[obs.EventType]float64{}
	durCount := map[obs.EventType]int{}
	evalOutcomes := map[string]int{}
	backendPaths := map[string]int{}
	persistCounts := map[string]int{}
	var batchCalls, batchedItems int
	var tool string
	var budgeted, completed int
	type improvement struct {
		sample int
		best   float64
	}
	var conv []improvement
	for _, e := range events {
		counts[e.Type]++
		if e.DurMS > 0 {
			durTotal[e.Type] += e.DurMS
			durCount[e.Type]++
		}
		switch e.Type {
		case obs.RunStart:
			tool, budgeted = e.Detail, e.N
		case obs.RunEnd:
			completed = e.N
		case obs.Incumbent:
			conv = append(conv, improvement{sample: e.Sample, best: e.Value})
		case obs.EvalDone:
			evalOutcomes[e.Detail]++
		case obs.EvalBatch:
			batchCalls++
			batchedItems += e.N
		case obs.BackendPath:
			backendPaths[e.Detail]++
		case obs.CachePersist:
			// Detail is a kind, optionally with a message ("degraded: ...");
			// aggregate by kind.
			kind, _, _ := strings.Cut(e.Detail, ":")
			persistCounts[kind]++
		}
	}

	span := events[len(events)-1].TMS - events[0].TMS
	fmt.Fprintf(w, "trace: %d events spanning %.1f ms\n", len(events), span)
	if tool != "" {
		fmt.Fprintf(w, "run: %s, %d hardware samples budgeted, %d completed\n", tool, budgeted, completed)
	}

	fmt.Fprintf(w, "\nphase time (sum of event durations):\n")
	var typs []obs.EventType
	var grand float64
	for typ, total := range durTotal { //lint:allow maporder(sort.Slice below orders typs before anything is printed)
		typs = append(typs, typ)
		grand += total
	}
	sort.Slice(typs, func(i, j int) bool {
		if durTotal[typs[i]] != durTotal[typs[j]] { //lint:allow floateq(exact inequality picks the tie-break branch; any tolerance would make the sort order depend on it)
			return durTotal[typs[i]] > durTotal[typs[j]]
		}
		return typs[i] < typs[j]
	})
	for _, typ := range typs {
		fmt.Fprintf(w, "  %-18s %10.1f ms  %5.1f%%  (%d events)\n",
			typ, durTotal[typ], 100*durTotal[typ]/grand, durCount[typ])
	}
	if len(typs) == 0 {
		fmt.Fprintf(w, "  (no events carry durations)\n")
	}

	if len(conv) > 0 {
		fmt.Fprintf(w, "\nconvergence (%d of %d proposals improved the incumbent):\n",
			len(conv), counts[obs.HWPropose])
		fmt.Fprintf(w, "  sample        best\n")
		for _, c := range conv {
			fmt.Fprintf(w, "  %6d  %10.6g\n", c.sample, c.best)
		}
	}

	hits, misses := counts[obs.CacheHit], counts[obs.CacheMiss]
	if hits+misses > 0 {
		fmt.Fprintf(w, "\ncache: hits=%d misses=%d leader-panics=%d (%.1f%% hit rate)\n",
			hits, misses, counts[obs.CachePanic], 100*float64(hits)/float64(hits+misses))
	}
	if len(persistCounts) > 0 {
		fmt.Fprintf(w, "persistent cache: %s\n", formatCounts(persistCounts))
	}
	if counts[obs.GuardRetry]+counts[obs.GuardTimeout] > 0 {
		fmt.Fprintf(w, "guard: retries=%d timeouts=%d\n",
			counts[obs.GuardRetry], counts[obs.GuardTimeout])
	}
	if len(evalOutcomes) > 0 {
		fmt.Fprintf(w, "evals: %s\n", formatCounts(evalOutcomes))
	}
	if batchCalls > 0 {
		fmt.Fprintf(w, "batches: %d eval.batch calls covering %d evaluations (mean batch size %.1f)\n",
			batchCalls, batchedItems, float64(batchedItems)/float64(batchCalls))
	}
	if len(backendPaths) > 0 {
		fmt.Fprintf(w, "backend paths: %s\n", formatCounts(backendPaths))
	}
	if n := counts[obs.DABOFit]; n > 0 {
		fmt.Fprintf(w, "surrogate: %d fits, %d degradations\n", n, counts[obs.DABODegraded])
	}
	return nil
}

// formatCounts renders a name→count map as "a=1 b=2", sorted by name for
// deterministic output.
func formatCounts(m map[string]int) string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, m[name]))
	}
	return strings.Join(parts, " ")
}
