package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSummarizeGolden pins the full report for the checked-in miniature
// trace. The fixture exercises every section of the report: phase
// breakdown, convergence table, cache/guard/eval/backend summaries, and
// the surrogate line. Regenerate with
//
//	go run ./cmd/tracestat cmd/tracestat/testdata/mini.jsonl > cmd/tracestat/testdata/mini.golden
//
// after an intentional format change.
func TestSummarizeGolden(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "mini.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "mini.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := summarize(bytes.NewReader(trace), &got); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("summary differs from golden file:\n--- got ---\n%s--- want ---\n%s", got.Bytes(), want)
	}
}

func TestCheckAcceptsGoldenTrace(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "mini.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := checkTrace(bytes.NewReader(trace), &out); err != nil {
		t.Fatalf("check: %v", err)
	}
	if got, want := out.String(), "68 events: schema OK (12 spans, all closed)\n"; got != want {
		t.Errorf("check output = %q, want %q", got, want)
	}
}

// TestCheckSpanlessTrace pins the pre-span output shape: a trace with no
// span events reports the plain event count, so old traces keep their
// exact -check output.
func TestCheckSpanlessTrace(t *testing.T) {
	trace := `{"seq":1,"t_ms":0,"type":"cache.hit"}` + "\n" +
		`{"seq":2,"t_ms":1,"type":"cache.miss"}` + "\n"
	var out bytes.Buffer
	if err := checkTrace(strings.NewReader(trace), &out); err != nil {
		t.Fatalf("check: %v", err)
	}
	if got, want := out.String(), "2 events: schema OK\n"; got != want {
		t.Errorf("check output = %q, want %q", got, want)
	}
}

// TestCheckReportsOpenSpans verifies that a truncated trace — spans
// started but never ended, as a canceled or crashed run leaves behind —
// is accepted and the open spans are reported, not treated as an error.
func TestCheckReportsOpenSpans(t *testing.T) {
	trace := `{"seq":1,"t_ms":0,"type":"span.start","span":1,"detail":"job"}` + "\n" +
		`{"seq":2,"t_ms":0,"type":"span.start","span":2,"parent":1,"detail":"run"}` + "\n" +
		`{"seq":3,"t_ms":1,"type":"span.end","span":2,"parent":1,"detail":"run","dur_ms":1}` + "\n"
	var out bytes.Buffer
	if err := checkTrace(strings.NewReader(trace), &out); err != nil {
		t.Fatalf("check: %v", err)
	}
	if got, want := out.String(), "3 events: schema OK (2 spans, 1 left open)\n"; got != want {
		t.Errorf("check output = %q, want %q", got, want)
	}
}

func TestCheckRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name, trace, wantErr string
	}{
		{
			name:    "unknown type",
			trace:   `{"seq":1,"t_ms":0,"type":"hw.explode"}` + "\n",
			wantErr: "unknown event type",
		},
		{
			name:    "unknown field",
			trace:   `{"seq":1,"t_ms":0,"type":"cache.hit","frobnication":3}` + "\n",
			wantErr: "unknown field",
		},
		{
			name:    "missing required field",
			trace:   `{"seq":1,"t_ms":0,"type":"sw.start"}` + "\n",
			wantErr: "missing layer",
		},
		{
			name: "gap in sequence numbers",
			trace: `{"seq":1,"t_ms":0,"type":"cache.hit"}` + "\n" +
				`{"seq":3,"t_ms":1,"type":"cache.hit"}` + "\n",
			wantErr: "dense sequence",
		},
		{
			name: "reused span id",
			trace: `{"seq":1,"t_ms":0,"type":"span.start","span":1,"detail":"job"}` + "\n" +
				`{"seq":2,"t_ms":1,"type":"span.start","span":1,"detail":"run"}` + "\n",
			wantErr: "reuses span id",
		},
		{
			name:    "span with unknown parent",
			trace:   `{"seq":1,"t_ms":0,"type":"span.start","span":2,"parent":1,"detail":"run"}` + "\n",
			wantErr: "unknown parent",
		},
		{
			name: "span under closed parent",
			trace: `{"seq":1,"t_ms":0,"type":"span.start","span":1,"detail":"job"}` + "\n" +
				`{"seq":2,"t_ms":1,"type":"span.end","span":1,"detail":"job","dur_ms":1}` + "\n" +
				`{"seq":3,"t_ms":2,"type":"span.start","span":2,"parent":1,"detail":"run"}` + "\n",
			wantErr: "already-closed parent",
		},
		{
			name:    "span.end for unknown span",
			trace:   `{"seq":1,"t_ms":0,"type":"span.end","span":7,"detail":"run","dur_ms":1}` + "\n",
			wantErr: "unknown span",
		},
		{
			name: "span closed twice",
			trace: `{"seq":1,"t_ms":0,"type":"span.start","span":1,"detail":"job"}` + "\n" +
				`{"seq":2,"t_ms":1,"type":"span.end","span":1,"detail":"job","dur_ms":1}` + "\n" +
				`{"seq":3,"t_ms":2,"type":"span.end","span":1,"detail":"job","dur_ms":2}` + "\n",
			wantErr: "closed twice",
		},
		{
			name:    "event references unknown parent span",
			trace:   `{"seq":1,"t_ms":0,"type":"cache.hit","parent":9}` + "\n",
			wantErr: "unknown parent span",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := checkTrace(strings.NewReader(tc.trace), &out)
			if err == nil {
				t.Fatalf("check accepted invalid trace %q", tc.trace)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSummarizeEmptyTrace(t *testing.T) {
	if err := summarize(strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("summarize accepted an empty trace")
	}
}
