// Command lint is the spotlightlint multichecker: it type-checks the
// requested packages and runs every determinism/hygiene and
// concurrency-lifecycle analyzer over them, printing findings as
// file:line:col: [analyzer] message (or as JSON / SARIF 2.1.0 for
// machine consumers — CI uploads the SARIF so findings annotate pull
// requests).
//
// Usage:
//
//	go run ./cmd/lint ./...               # whole module (what CI runs)
//	go run ./cmd/lint ./internal/eval ./internal/core
//	go run ./cmd/lint -list               # describe the analyzers
//	go run ./cmd/lint -format sarif -o lint.sarif ./...
//	go run ./cmd/lint -allows ./...       # audit every //lint:allow site
//	go run ./cmd/lint -parallel 0 ./...   # analyze packages in parallel
//
// Exit status: 0 clean, 1 findings (or, with -allows, reasonless allow
// annotations), 2 usage or load/type errors. The checks and their
// rationale are documented in internal/analysis/spotlightlint and
// DESIGN.md §9 and §15; individual lines are suppressed with
// //lint:allow token(reason) annotations — the reason is mandatory,
// and -allows is the audit trail that keeps it honest.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spotlight/internal/analysis/lintkit"
	"spotlight/internal/analysis/spotlightlint"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so the -o file is closed (and its close
// error reported) on every path before the process exits.
func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	allows := flag.Bool("allows", false, "report every //lint:allow annotation site instead of findings; exit 1 if any lacks a reason")
	format := flag.String("format", "text", "findings output format: text, json, or sarif")
	out := flag.String("o", "", "write findings to this file instead of stdout")
	parallel := flag.Int("parallel", 1, "packages analyzed concurrently; 0 means GOMAXPROCS")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lint [-list] [-allows] [-format text|json|sarif] [-o file] [-parallel n] [packages]\n\npackages default to ./...; patterns are import paths or ./dir paths, with /... wildcards\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := spotlightlint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "lint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}

	w := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		outFile, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
		w = outFile
	}
	status := report(w, loader, pkgs, analyzers, *allows, *format, *parallel)
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
	}
	return status
}

// report runs either the allow audit or the analyzers and writes the
// result to w in the requested format, returning the exit status.
func report(w io.Writer, loader *lintkit.Loader, pkgs []*lintkit.Package, analyzers []*lintkit.Analyzer, allows bool, format string, parallel int) int {
	if allows {
		return reportAllows(w, loader.Root, pkgs)
	}
	findings, err := lintkit.RunParallel(pkgs, analyzers, parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}
	switch format {
	case "json":
		err = lintkit.WriteJSON(w, loader.Root, findings)
	case "sarif":
		err = lintkit.WriteSARIF(w, loader.Root, findings, analyzers)
	default:
		for _, f := range findings {
			if _, err = fmt.Fprintln(w, f); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// reportAllows prints every //lint:allow site as file:line: token(reason)
// in deterministic order and returns the exit status: suppressions are
// a budget, and an allow without a reason is a finding in its own
// right.
func reportAllows(w io.Writer, root string, pkgs []*lintkit.Package) int {
	sites := lintkit.Allows(pkgs)
	empty := 0
	for _, a := range sites {
		name := a.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d: %s(%s)\n", name, a.Pos.Line, a.Token, a.Reason)
		if a.Reason == "" {
			empty++
		}
	}
	fmt.Fprintf(os.Stderr, "lint: %d allow site(s) in %d package(s)\n", len(sites), len(pkgs))
	if empty > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d allow site(s) without a reason — every suppression must say why\n", empty)
		return 1
	}
	return 0
}
