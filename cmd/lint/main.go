// Command lint is the spotlightlint multichecker: it type-checks the
// requested packages and runs every determinism/hygiene analyzer over
// them, printing findings as file:line:col: [analyzer] message.
//
// Usage:
//
//	go run ./cmd/lint ./...          # whole module (what CI runs)
//	go run ./cmd/lint ./internal/eval ./internal/core
//	go run ./cmd/lint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors. The
// checks and their rationale are documented in
// internal/analysis/spotlightlint and DESIGN.md §9; individual lines are
// suppressed with //lint:allow token(reason) annotations.
package main

import (
	"flag"
	"fmt"
	"os"

	"spotlight/internal/analysis/lintkit"
	"spotlight/internal/analysis/spotlightlint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lint [-list] [packages]\n\npackages default to ./...; patterns are import paths or ./dir paths, with /... wildcards\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := spotlightlint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	findings, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
