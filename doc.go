// Package spotlight is a from-scratch Go reproduction of "Leveraging
// Domain Information for the Efficient Automated Design of Deep Learning
// Accelerators" (Sakhuja, Shi, Lin — HPCA 2023): the daBO domain-aware
// Bayesian optimization framework, the Spotlight HW/SW co-design tool
// built on it, the analytical cost models it evaluates against, and the
// full evaluation harness for the paper's figures.
//
// The root package holds only module documentation and the benchmark
// harness (bench_test.go), which has one benchmark per table/figure of
// the paper. The implementation lives under internal/:
//
//	internal/core      daBO + Spotlight (the paper's contribution)
//	internal/maestro   primary analytical cost model (MAESTRO's role)
//	internal/timeloop  independent second model (Timeloop's role, §VII-F)
//	internal/hw        accelerator microarchitecture, spaces, baselines
//	internal/sched     software schedules, dataflows, constraints
//	internal/workload  CONV-space layers and the five-model zoo
//	internal/search    random / GA / ConfuciuX-like / HASCO-like baselines
//	internal/gp        Gaussian process surrogate
//	internal/exp       per-figure experiment drivers
//	internal/stats     Spearman, CDFs, quantiles, overlap metrics
//	internal/linalg    dense matrices and Cholesky solves
//
// Executables: cmd/spotlight (the tool), cmd/experiments (figure
// regeneration), cmd/modelinfo (layer tables). Runnable examples live in
// examples/. See README.md, DESIGN.md, and EXPERIMENTS.md.
package spotlight
